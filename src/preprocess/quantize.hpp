// Quantisation of (m/z, intensity) pairs for the ID-Level encoder.
//
// Sec. III-B: "both the m/z values and intensity values are quantized.
// Pre-allocated vectors from high-dimensional memory spaces, denoted as
// ID[0,f] for m/z and L[0,q] for intensity". This module maps a filtered,
// normalised spectrum to the integer (bin, level) pairs the encoder binds.
#pragma once

#include <cstdint>
#include <vector>

#include "ms/spectrum.hpp"

namespace spechd::preprocess {

struct quantize_config {
  double mz_min = 101.0;         ///< encoder m/z window (matches filter)
  double mz_max = 1905.0;
  std::uint32_t mz_bins = 34000;    ///< f: number of ID vectors (~0.05 Da bins)
  std::uint16_t intensity_levels = 64;  ///< q: number of Level vectors
};

/// One quantised peak: ID index in [0, f), level index in [0, q).
struct quantized_peak {
  std::uint32_t mz_bin = 0;
  std::uint16_t level = 0;

  friend constexpr bool operator==(const quantized_peak&, const quantized_peak&) = default;
};

/// A spectrum after quantisation; carries through the metadata clustering
/// and evaluation need (precursor, label, original index).
struct quantized_spectrum {
  std::vector<quantized_peak> peaks;
  double precursor_mz = 0.0;
  int precursor_charge = 0;
  std::int32_t label = ms::unlabelled;
  std::uint32_t source_index = 0;  ///< index into the original spectrum list

  std::size_t size() const noexcept { return peaks.size(); }
};

/// m/z -> bin index (clamped to the window edges).
std::uint32_t quantize_mz(double mz, const quantize_config& config) noexcept;

/// intensity in [0, max_intensity] -> level index. Levels are linear in
/// relative intensity (the hardware uses a multiplier + truncation).
std::uint16_t quantize_intensity(float intensity, float max_intensity,
                                 const quantize_config& config) noexcept;

/// Quantises one spectrum. Peaks falling into the same (bin) keep only the
/// strongest level (duplicate bins add no information to a binary HV and
/// the hardware dedups via its sorted stream).
quantized_spectrum quantize_spectrum(const ms::spectrum& s, std::uint32_t source_index,
                                     const quantize_config& config);

std::vector<quantized_spectrum> quantize_spectra(const std::vector<ms::spectrum>& spectra,
                                                 const quantize_config& config);

}  // namespace spechd::preprocess
