// Scale and Normalization module (Sec. III-A).
//
// Standard MS preprocessing: intensity scaling to compress the dynamic
// range (sqrt or rank), then unit-norm so spectral similarity reduces to a
// dot product. HyperSpec and falcon both default to sqrt scaling.
#pragma once

#include "ms/spectrum.hpp"

namespace spechd::preprocess {

enum class intensity_scaling {
  none,
  sqrt,  ///< i -> sqrt(i); the SpecHD/HyperSpec default
  rank,  ///< i -> rank within spectrum (most robust, costlier)
};

struct normalize_config {
  intensity_scaling scaling = intensity_scaling::sqrt;
  bool unit_norm = true;  ///< scale so the intensity L2 norm is 1
};

/// Applies scaling + normalisation in place.
void normalize_spectrum(ms::spectrum& s, const normalize_config& config);

void normalize_spectra(std::vector<ms::spectrum>& spectra, const normalize_config& config);

}  // namespace spechd::preprocess
