#!/usr/bin/env python3
"""Docs checks run by the CI docs job (no third-party deps).

1. Every relative markdown link in the repo's *.md files must resolve to
   an existing file or directory (anchors are stripped; http(s)/mailto
   links are not fetched).
2. README.md must quote the tier-1 verify command *verbatim*. The source
   of truth is ROADMAP.md's "Tier-1 verify:" line, so the check cannot
   drift from what the driver actually runs.

Exit status: 0 clean, 1 with one "file: message" line per finding.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SKIP_DIRS = {"build", ".git", ".claude"}
# [text](target) — stop at the first unescaped ')'; images share the syntax.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

def md_files():
    for path in sorted(REPO.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            yield path

def check_links():
    errors = []
    for md in md_files():
        text = md.read_text(encoding="utf-8")
        # Ignore fenced code blocks: link syntax inside them is not a link.
        text = re.sub(r"```.*?```", "", text, flags=re.S)
        for target in LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (md.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                errors.append(f"{md.relative_to(REPO)}: broken link -> {target}")
    return errors

def check_readme_verify_command():
    roadmap = (REPO / "ROADMAP.md").read_text(encoding="utf-8")
    match = re.search(r"Tier-1 verify:\*{0,2}\s*`([^`]+)`", roadmap)
    if not match:
        return ["ROADMAP.md: could not find the `Tier-1 verify:` command line"]
    tier1 = match.group(1)
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    if tier1 not in readme:
        return [
            "README.md: tier-1 verify command is missing or not verbatim; expected "
            f"exactly: {tier1}"
        ]
    return []

def main():
    errors = check_links() + check_readme_verify_command()
    for error in errors:
        print(error)
    if errors:
        print(f"\n{len(errors)} docs finding(s).")
        return 1
    print("docs OK: links resolve, README verify command matches ROADMAP verbatim.")
    return 0

if __name__ == "__main__":
    sys.exit(main())
