// spechd — command-line front end to the SpecHD library.
//
// Subcommands:
//   synth    generate a synthetic labelled dataset (MGF)
//   info     summarise a spectra file (count, peaks, charges, buckets)
//   encode   preprocess + encode spectra into a hypervector store (.sphv)
//   cluster  cluster a spectra file or .sphv store; write consensus MGF
//   serve    run the sharded clustering service: ingest files, answer a
//            query workload, snapshot/restore service state (.sphsnap);
//            --journal-dir enables write-ahead journaling + crash recovery
//   recover  rebuild service state from a journal directory (newest
//            snapshot + journal replay, truncating a torn tail), report
//            what was replayed, optionally re-query / export a snapshot
//   search   open-modification search: build an HV spectral library
//            (.sphlib) from a FASTA database or identified spectra, then
//            answer top-k queries with a precursor-mass-shift tolerance
//   doctor   pretty-print a `.sphcrash` crash dump (metrics snapshot,
//            per-shard health, flight-recorder event tail) offline
//   model    print modelled FPGA runtime/energy for the paper datasets
//   help     print usage
//
// Formats are selected by extension: .mgf, .ms2, .mzML/.mzml, .mzXML.
// Unknown subcommands, unknown flags, and stray arguments are errors
// (usage on stderr, exit 2) — never silently ignored.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/incremental.hpp"
#include "core/spechd.hpp"
#include "fpga/des.hpp"
#include "fpga/tool_models.hpp"
#include "hdc/hv_store.hpp"
#include "metrics/quality.hpp"
#include "ms/fasta.hpp"
#include "ms/mgf.hpp"
#include "ms/ms2.hpp"
#include "ms/mzml.hpp"
#include "ms/mzxml.hpp"
#include "ms/synthetic.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "preprocess/pipeline.hpp"
#include "serve/search.hpp"
#include "serve/service.hpp"
#include "util/failpoint.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace spechd;

/// Minimal flag parser: --key value / --flag, leaving positionals in order.
class arg_list {
public:
  arg_list(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  std::optional<std::string> take_option(const std::string& name) {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == name) {
        std::string value = args_[i + 1];
        args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i),
                    args_.begin() + static_cast<std::ptrdiff_t>(i) + 2);
        return value;
      }
    }
    return std::nullopt;
  }

  bool take_flag(const std::string& name) {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == name) {
        args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  const std::vector<std::string>& positionals() const noexcept { return args_; }

private:
  std::vector<std::string> args_;
};

std::string extension_of(const std::string& path) {
  auto ext = std::filesystem::path(path).extension().string();
  for (auto& c : ext) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return ext;
}

std::vector<ms::spectrum> read_any(const std::string& path) {
  const auto ext = extension_of(path);
  if (ext == ".mgf") return ms::read_mgf_file(path);
  if (ext == ".ms2") return ms::read_ms2_file(path);
  if (ext == ".mzml") return ms::read_mzml_file(path);
  if (ext == ".mzxml") return ms::read_mzxml_file(path);
  throw spechd::error("unsupported input format: " + path +
                      " (expected .mgf/.ms2/.mzML/.mzXML)");
}

void write_any(const std::string& path, const std::vector<ms::spectrum>& spectra) {
  const auto ext = extension_of(path);
  if (ext == ".mgf") return ms::write_mgf_file(path, spectra);
  if (ext == ".ms2") return ms::write_ms2_file(path, spectra);
  if (ext == ".mzml") return ms::write_mzml_file(path, spectra);
  if (ext == ".mzxml") return ms::write_mzxml_file(path, spectra);
  throw spechd::error("unsupported output format: " + path);
}

cluster::linkage parse_linkage(const std::string& name) {
  if (name == "single") return cluster::linkage::single;
  if (name == "complete") return cluster::linkage::complete;
  if (name == "average") return cluster::linkage::average;
  if (name == "ward") return cluster::linkage::ward;
  throw spechd::error("unknown linkage: " + name);
}

void print_usage(std::ostream& out) {
  out <<
      "spechd — hyperdimensional mass-spectrometry clustering\n\n"
      "usage:\n"
      "  spechd synth -o out.mgf [--peptides N] [--replicates M] [--seed S]\n"
      "  spechd info <spectra-file>\n"
      "  spechd encode <spectra-file> -o store.sphv [--dim D]\n"
      "  spechd cluster <spectra-file|store.sphv> [-o consensus.mgf]\n"
      "                 [-t threshold] [--linkage single|complete|average|ward]\n"
      "                 [--float] [--threads N]\n"
      "  spechd serve   [--shards N] [--batch B] [--queue N] [--threads N]\n"
      "                 [-t threshold] [--restore in.sphsnap]\n"
      "                 [--journal-dir DIR] [--publish-every N] [--atomic]\n"
      "                 [--failpoints SPEC] [--failpoint-seed S]\n"
      "                 [--ingest spectra-file]... [--query spectra-file]\n"
      "                 [--snapshot out.sphsnap] [--listen HOST:PORT]\n"
      "                 [--shed-depth N] [--library lib.sphlib]\n"
      "                 [--metrics-log SECS] [--slow-threshold-us N]\n"
      "                 [--slow-sample N] [--crash-dump FILE.sphcrash]\n"
      "                 [--watchdog-deadline-ms N] [--watchdog-kill-after-ms N]\n"
      "  spechd client  --connect HOST:PORT [--batch B] [--timeout MS]\n"
      "                 [--ingest spectra-file]... [--query spectra-file]\n"
      "                 [--search spectra-file] [--topk K] [--tolerance DA]\n"
      "                 [--ping] [--stats] [--drain] [--debug-dump]\n"
      "                 [--metrics [--watch SECS] [--format table|prom]]\n"
      "  spechd search  --build lib.sphlib (--fasta db.fasta [--missed N]\n"
      "                 [--charges 2,3] | --spectra ref-file) [--dim D]\n"
      "  spechd search  --library lib.sphlib --query spectra-file\n"
      "                 [--topk K] [--tolerance DA]\n"
      "  spechd recover --journal-dir DIR [--query spectra-file]\n"
      "                 [--snapshot out.sphsnap]\n"
      "                 [--failpoints SPEC] [--failpoint-seed S]\n"
      "  spechd doctor  <dump.sphcrash>\n"
      "  spechd model [--overlap]\n"
      "  spechd help\n";
}

int usage_error() {
  print_usage(std::cerr);
  return 2;
}

/// Commands take the options they know first; anything left that still
/// looks like a flag is a typo — reject it loudly instead of silently
/// running with default settings. Extra positionals are typos too.
int reject_leftovers(const arg_list& args, const std::string& command,
                     std::size_t allowed_positionals) {
  for (const auto& arg : args.positionals()) {
    if (!arg.empty() && arg.front() == '-') {
      std::cerr << "spechd " << command << ": unknown option '" << arg << "'\n";
      return usage_error();
    }
  }
  if (args.positionals().size() > allowed_positionals) {
    std::cerr << "spechd " << command << ": unexpected argument '"
              << args.positionals()[allowed_positionals] << "'\n";
    return usage_error();
  }
  return 0;
}

int cmd_synth(arg_list& args) {
  ms::synthetic_config config;
  if (const auto v = args.take_option("--peptides")) config.peptide_count = std::stoul(*v);
  if (const auto v = args.take_option("--replicates")) {
    config.spectra_per_peptide_mean = std::stod(*v);
  }
  if (const auto v = args.take_option("--seed")) config.seed = std::stoull(*v);
  const auto out = args.take_option("-o");
  if (const int rc = reject_leftovers(args, "synth", 0)) return rc;
  if (!out) {
    std::cerr << "synth: missing -o <output>\n";
    return 2;
  }
  const auto data = ms::generate_dataset(config);
  write_any(*out, data.spectra);
  std::cout << "wrote " << data.spectra.size() << " spectra ("
            << data.library.size() << " peptide classes) to " << *out << "\n";
  return 0;
}

int cmd_info(arg_list& args) {
  if (const int rc = reject_leftovers(args, "info", 1)) return rc;
  if (args.positionals().empty()) {
    std::cerr << "info: missing input file\n";
    return 2;
  }
  const auto path = args.positionals().front();
  const auto spectra = read_any(path);

  std::size_t peaks = 0;
  std::size_t raw_bytes = 0;
  std::map<int, std::size_t> charges;
  for (const auto& s : spectra) {
    peaks += s.size();
    raw_bytes += ms::raw_peak_bytes(s);
    ++charges[s.precursor_charge];
  }
  const auto batch =
      preprocess::run_preprocessing(spectra, preprocess::preprocess_config{});
  const auto st = preprocess::summarize(batch.buckets);

  text_table table("spectra file: " + path);
  table.set_header({"property", "value"});
  table.add_row({"spectra", text_table::num(spectra.size())});
  table.add_row({"total peaks", text_table::num(peaks)});
  table.add_row({"avg peaks/spectrum",
                 text_table::num(spectra.empty() ? 0.0
                                                 : static_cast<double>(peaks) /
                                                       static_cast<double>(spectra.size()),
                                 1)});
  table.add_row({"raw peak bytes", text_table::num(raw_bytes)});
  for (const auto& [charge, count] : charges) {
    table.add_row({"charge " + std::to_string(charge) + "+", text_table::num(count)});
  }
  table.add_row({"buckets (res 1.0)", text_table::num(st.bucket_count)});
  table.add_row({"largest bucket", text_table::num(st.largest)});
  table.add_row({"filter-dropped", text_table::num(batch.dropped)});
  table.print(std::cout);
  return 0;
}

int cmd_encode(arg_list& args) {
  const auto out = args.take_option("-o");
  core::spechd_config config;
  if (const auto v = args.take_option("--dim")) config.encoder.dim = std::stoul(*v);
  if (const int rc = reject_leftovers(args, "encode", 1)) return rc;
  if (args.positionals().empty() || !out) {
    std::cerr << "encode: need <input> and -o <store.sphv>\n";
    return 2;
  }
  const auto spectra = read_any(args.positionals().front());
  const auto batch = preprocess::run_preprocessing(spectra, config.preprocess);
  hdc::id_level_encoder encoder(config.encoder, config.preprocess.quantize.mz_bins,
                                config.preprocess.quantize.intensity_levels);

  hdc::hv_store store(config.encoder.dim, config.encoder.seed);
  for (const auto& q : batch.spectra) {
    hdc::hv_record record;
    record.hv = encoder.encode(q);
    record.precursor_mz = q.precursor_mz;
    record.precursor_charge = q.precursor_charge;
    record.scan = q.source_index;
    record.label = q.label;
    store.append(std::move(record));
  }
  store.save_file(*out);

  std::size_t raw_bytes = 0;
  for (const auto& s : spectra) raw_bytes += ms::raw_peak_bytes(s);
  std::cout << "encoded " << store.size() << " spectra -> " << *out << " ("
            << store.file_bytes() / 1024 << " KiB; raw peaks were "
            << raw_bytes / 1024 << " KiB)\n";
  return 0;
}

int cmd_cluster(arg_list& args) {
  core::spechd_config config;
  if (const auto v = args.take_option("-t")) config.distance_threshold = std::stod(*v);
  if (const auto v = args.take_option("--linkage")) config.link = parse_linkage(*v);
  if (const auto v = args.take_option("--threads")) config.threads = std::stoul(*v);
  if (args.take_flag("--float")) config.use_fixed_point = false;
  const auto out = args.take_option("-o");
  if (const int rc = reject_leftovers(args, "cluster", 1)) return rc;
  if (args.positionals().empty()) {
    std::cerr << "cluster: missing input\n";
    return 2;
  }
  const auto& input = args.positionals().front();

  if (extension_of(input) == ".sphv") {
    // Cluster a pre-encoded store (the standalone-clustering workflow).
    const auto store = hdc::hv_store::load_file(input);
    config.encoder.dim = store.dim();
    config.encoder.seed = store.encoder_seed();
    core::incremental_clusterer clusterer(config);
    clusterer.bootstrap(store);
    const auto flat = clusterer.clustering();
    std::cout << "clustered " << store.size() << " stored vectors into "
              << clusterer.cluster_count() << " clusters\n";
    std::vector<std::int32_t> truth;
    truth.reserve(store.size());
    for (const auto& r : store.records()) truth.push_back(r.label);
    const bool any_labels =
        std::any_of(truth.begin(), truth.end(), [](std::int32_t l) { return l >= 0; });
    if (any_labels) {
      const auto q = metrics::evaluate_clustering(truth, flat);
      std::cout << "clustered ratio " << q.clustered_ratio << ", ICR "
                << q.incorrect_ratio << ", completeness " << q.completeness << "\n";
    }
    return 0;
  }

  const auto spectra = read_any(input);
  core::spechd_pipeline pipeline(config);
  const auto result = pipeline.run(spectra);
  std::cout << "clustered " << spectra.size() << " spectra into "
            << result.clustering.cluster_count << " clusters ("
            << result.consensus.size() << " consensus spectra, compression "
            << result.compression_factor << "x)\n";

  std::vector<std::int32_t> truth;
  truth.reserve(spectra.size());
  for (const auto& s : spectra) truth.push_back(s.label);
  if (std::any_of(truth.begin(), truth.end(), [](std::int32_t l) { return l >= 0; })) {
    const auto q = metrics::evaluate_clustering(truth, result.clustering);
    std::cout << "clustered ratio " << q.clustered_ratio << ", ICR "
              << q.incorrect_ratio << ", completeness " << q.completeness << "\n";
  }
  if (out) {
    write_any(*out, result.consensus);
    std::cout << "consensus written to " << *out << "\n";
  }
  return 0;
}

/// `--failpoints SPEC [--failpoint-seed S]`: arm fault injection before
/// the service touches the directory (operator recovery drills; the same
/// grammar as the SPECHD_FAILPOINTS env var, which the registry already
/// honours — the flag takes precedence because it arms later). A bad spec
/// is an input error: exit 2 with the parser's complaint.
int arm_failpoint_flags(arg_list& args, const std::string& command) {
  const auto seed = args.take_option("--failpoint-seed");
  const auto spec = args.take_option("--failpoints");
  try {
    if (seed) util::registry().seed(std::stoull(*seed));
    if (spec) util::registry().arm_from_spec(*spec);
  } catch (const std::exception& e) {
    std::cerr << "spechd " << command << ": bad --failpoints: " << e.what() << "\n";
    return 2;
  }
  return 0;
}

/// Configures a service from a snapshot/journal identity block (the
/// single source of truth for `serve --restore`, `serve --journal-dir`
/// resume, and `recover` — per-flag overrides stay at the call sites).
void apply_identity(serve::serve_config& config, const serve::snapshot_identity& id) {
  config.pipeline.encoder.dim = id.dim;
  config.pipeline.encoder.seed = id.encoder_seed;
  config.pipeline.distance_threshold = id.distance_threshold;
  config.pipeline.preprocess.bucketing.resolution = id.bucket_resolution;
  config.pipeline.preprocess.bucketing.fallback_charge = id.fallback_charge;
  config.mode = static_cast<core::assign_mode>(id.assign_mode);
}

/// The serve/recover query workload: per-query latency + match summary.
void run_query_workload(serve::clustering_service& service, const std::string& query_file) {
  using clock = std::chrono::steady_clock;
  const auto queries = read_any(query_file);
  std::size_t matched = 0;
  std::size_t unencodable = 0;
  double matched_distance = 0.0;
  std::vector<double> latencies_us;
  latencies_us.reserve(queries.size());
  for (const auto& q : queries) {
    const auto start = clock::now();
    const auto r = service.query(q);
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(clock::now() - start).count());
    if (!r.encodable) {
      ++unencodable;
    } else if (r.matched) {
      ++matched;
      matched_distance += r.distance;
    }
  }
  std::sort(latencies_us.begin(), latencies_us.end());
  text_table table("query workload: " + query_file);
  table.set_header({"metric", "value"});
  table.add_row({"queries", text_table::num(queries.size())});
  table.add_row({"matched", text_table::num(matched)});
  table.add_row({"unmatched", text_table::num(queries.size() - matched - unencodable)});
  table.add_row({"unencodable", text_table::num(unencodable)});
  table.add_row({"mean matched distance",
                 text_table::num(matched > 0 ? matched_distance / static_cast<double>(matched)
                                             : 0.0,
                                 4)});
  table.add_row({"latency p50 (us)", text_table::num(percentile_sorted(latencies_us, 0.50), 1)});
  table.add_row({"latency p90 (us)", text_table::num(percentile_sorted(latencies_us, 0.90), 1)});
  table.add_row({"latency p99 (us)", text_table::num(percentile_sorted(latencies_us, 0.99), 1)});
  table.print(std::cout);
}

/// Deterministic per-query search report, shared by `spechd search` and
/// `spechd client --search` so the CI smoke job can diff in-process output
/// against networked output byte for byte. Every field is integral or a
/// library-entry string — nothing latency- or environment-dependent.
void print_search_hits(std::size_t index, const serve::search_result& r) {
  std::cout << "query " << index << (r.encodable ? "" : " unencodable")
            << " probed=" << r.buckets_probed << " candidates=" << r.candidates
            << " hits=" << r.hits.size() << "\n";
  for (std::size_t h = 0; h < r.hits.size(); ++h) {
    const auto& hit = r.hits[h];
    std::cout << "hit " << h << " id=" << hit.id << " hamming=" << hit.hamming
              << " bucket=" << hit.bucket_key << " charge=" << hit.precursor_charge
              << " name=" << hit.name << "\n";
  }
}

/// Per-shard state table plus (when ground-truth labels exist) quality.
void print_service_state(serve::clustering_service& service) {
  const auto stats = service.stats();
  text_table table("service state");
  table.set_header({"shard", "records", "clusters", "batches", "view epoch", "health"});
  for (std::size_t s = 0; s < stats.shards.size(); ++s) {
    const auto& sh = stats.shards[s];
    table.add_row({text_table::num(s), text_table::num(sh.record_count),
                   text_table::num(sh.cluster_count), text_table::num(sh.batches),
                   text_table::num(sh.view_epoch), serve::shard_health_name(sh.health)});
  }
  table.add_row({"total", text_table::num(stats.record_count),
                 text_table::num(stats.cluster_count), text_table::num(stats.batches),
                 "", ""});
  table.print(std::cout);
  if (stats.degraded_shards > 0 || stats.failed_shards > 0) {
    std::cout << "WARNING: " << stats.degraded_shards << " degraded (read-only), "
              << stats.failed_shards << " failed shard(s)\n";
    for (std::size_t s = 0; s < stats.shards.size(); ++s) {
      const auto& sh = stats.shards[s];
      if (sh.health != serve::shard_health::healthy) {
        std::cout << "  shard " << s << " " << serve::shard_health_name(sh.health)
                  << ": " << sh.last_error << "\n";
      }
    }
  }
  if (stats.journal_bytes > 0) {
    std::cout << "journal: " << stats.journal_records << " records, "
              << stats.journal_bytes / 1024 << " KiB across " << stats.shards.size()
              << " shard journals\n";
  }

  // Quality vs ground truth when the ingested spectra carried labels.
  const auto store = service.to_store();
  std::vector<std::int32_t> truth;
  truth.reserve(store.size());
  for (const auto& r : store.records()) truth.push_back(r.label);
  if (std::any_of(truth.begin(), truth.end(), [](std::int32_t l) { return l >= 0; })) {
    const auto q = metrics::evaluate_clustering(truth, service.clustering());
    std::cout << "clustered ratio " << q.clustered_ratio << ", ICR " << q.incorrect_ratio
              << ", completeness " << q.completeness << "\n";
  }
}

/// The one live server, for the SIGTERM/SIGINT handler (request_stop is
/// async-signal-safe: one eventfd write).
std::atomic<spechd::net::server*> g_server{nullptr};

extern "C" void handle_shutdown_signal(int) {
  if (auto* s = g_server.load(std::memory_order_acquire)) s->request_stop();
}

// --- metrics rendering (client --metrics / serve --metrics-log) --------------

/// Value of a named counter in a snapshot (0 when absent — a counter that
/// was never bumped was never registered).
std::uint64_t counter_or_zero(const obs::metrics_snapshot& snap, const char* name) {
  const auto* c = snap.find_counter(name);
  return c ? c->value : 0;
}

/// Interval histogram: `cur` minus `prev` per bucket. Bucket counts are
/// monotone, so the difference is exactly the histogram of the samples
/// recorded between the two scrapes — this is how --watch reports interval
/// (not lifetime) percentiles.
obs::histogram_sample hist_delta(const obs::histogram_sample& cur,
                                 const obs::histogram_sample* prev) {
  if (!prev) return cur;
  obs::histogram_sample d;
  d.name = cur.name;
  d.unit = cur.unit;
  d.count = cur.count - prev->count;
  d.sum = cur.sum - prev->sum;
  std::map<std::uint64_t, std::uint64_t> base;
  for (const auto& b : prev->buckets) base[b.lo] = b.count;
  for (const auto& b : cur.buckets) {
    const auto it = base.find(b.lo);
    const std::uint64_t n = b.count - (it == base.end() ? 0 : it->second);
    if (n > 0) d.buckets.push_back({b.lo, b.hi, n});
  }
  return d;
}

/// Histograms are recorded in ns; render percentiles in µs (one decimal
/// keeps sub-µs stages readable). Non-ns histograms print raw values.
std::string hist_value(const obs::histogram_sample& h, double p) {
  const double v = h.percentile(p);
  if (h.unit == "ns") return text_table::num(v / 1000.0, 1);
  return text_table::num(v, 0);
}

/// One-shot rendering of a metrics scrape: counters/gauges, per-stage
/// histograms with p50/p90/p99, and the slow-request ring.
void print_metrics_tables(const net::wire_metrics& m, const std::string& where) {
  const auto& snap = m.snapshot;
  if (!snap.counters.empty() || !snap.gauges.empty()) {
    text_table table("remote metrics: " + where);
    table.set_header({"counter", "value"});
    for (const auto& c : snap.counters) {
      table.add_row({c.name, text_table::num(c.value)});
    }
    for (const auto& g : snap.gauges) {
      table.add_row({g.name, std::to_string(g.value)});  // gauges are signed
    }
    table.print(std::cout);
  }
  if (!snap.histograms.empty()) {
    text_table table("stage latencies (us)");
    table.set_header({"histogram", "count", "p50", "p90", "p99"});
    for (const auto& h : snap.histograms) {
      table.add_row({h.name, text_table::num(h.count), hist_value(h, 0.50),
                     hist_value(h, 0.90), hist_value(h, 0.99)});
    }
    table.print(std::cout);
  }
  if (!m.slow.empty()) {
    text_table table("slow requests (newest last)");
    table.set_header({"kind", "seq", "total (ms)", "stage breakdown"});
    for (const auto& s : m.slow) {
      std::ostringstream stages;
      for (std::size_t i = 0; i < s.stages.size(); ++i) {
        if (i > 0) stages << " ";
        stages << obs::stage_name(s.stages[i].st) << "="
               << text_table::num(static_cast<double>(s.stages[i].ns) / 1e6, 2);
      }
      table.add_row({s.kind, text_table::num(s.seq),
                     text_table::num(static_cast<double>(s.total_ns) / 1e6, 2),
                     stages.str()});
    }
    table.print(std::cout);
  }
  if (snap.counters.empty() && snap.gauges.empty() && snap.histograms.empty()) {
    std::cout << "no metrics registered yet (server has served no work)\n";
  }
}

/// One --watch tick: counter deltas as rates, histogram interval
/// percentiles from bucket diffs against the previous scrape.
void print_metrics_interval(const net::wire_metrics& cur, const net::wire_metrics& prev,
                            double seconds) {
  text_table table("interval (" + text_table::num(seconds, 1) + " s)");
  table.set_header({"metric", "delta", "per second"});
  bool any = false;
  for (const auto& c : cur.snapshot.counters) {
    const auto* p = prev.snapshot.find_counter(c.name);
    const std::uint64_t delta = c.value - (p ? p->value : 0);  // wrap-safe
    if (delta == 0) continue;
    any = true;
    table.add_row({c.name, text_table::num(delta),
                   text_table::num(static_cast<double>(delta) / seconds, 1)});
  }
  if (any) table.print(std::cout);
  text_table hists("interval stage latencies (us)");
  hists.set_header({"histogram", "count", "p50", "p90", "p99"});
  bool any_hist = false;
  for (const auto& h : cur.snapshot.histograms) {
    const auto d = hist_delta(h, prev.snapshot.find_histogram(h.name));
    if (d.count == 0) continue;
    any_hist = true;
    hists.add_row({d.name, text_table::num(d.count), hist_value(d, 0.50),
                   hist_value(d, 0.90), hist_value(d, 0.99)});
  }
  if (any_hist) hists.print(std::cout);
  if (!any && !any_hist) std::cout << "(idle interval: no activity)\n";
}

// --- flight-recorder rendering (client --debug-dump / spechd doctor) ---------

/// Event tail as a table, newest last. Used for both the live wire dump
/// and an offline `.sphcrash` — the same events either way.
void print_flight_events(const std::vector<obs::flight_event>& events) {
  if (events.empty()) {
    std::cout << "no flight events recorded\n";
    return;
  }
  text_table table("flight events (" + text_table::num(events.size()) +
                   ", newest last)");
  table.set_header({"seq", "kind", "arg0", "arg1", "req id", "thread", "age (ms)"});
  const auto newest_ns = events.back().steady_ns;
  for (const auto& e : events) {
    table.add_row(
        {text_table::num(e.seq),
         obs::event_kind_name(static_cast<obs::event_kind>(e.kind)),
         text_table::num(e.arg0), text_table::num(e.arg1),
         e.request_id != 0 ? text_table::num(e.request_id) : std::string{"-"},
         text_table::num(static_cast<std::size_t>(e.thread_id)),
         text_table::num(static_cast<double>(newest_ns - e.steady_ns) / 1e6, 1)});
  }
  table.print(std::cout);
}

void print_shard_status_row(text_table& table, std::size_t shard,
                            std::uint32_t health, std::uint64_t generation,
                            std::uint64_t journal_bytes, std::uint64_t journal_records,
                            std::uint64_t queue_depth) {
  table.add_row({text_table::num(shard),
                 serve::shard_health_name(static_cast<serve::shard_health>(health)),
                 text_table::num(generation), text_table::num(journal_bytes),
                 text_table::num(journal_records), text_table::num(queue_depth)});
}

/// `spechd doctor FILE`: decode a `.sphcrash` dump offline — what was the
/// process doing right before it died, without the process.
int cmd_doctor(arg_list& args) {
  if (const int rc = reject_leftovers(args, "doctor", 1)) return rc;
  if (args.positionals().empty()) {
    std::cerr << "doctor: missing dump file\n";
    return 2;
  }
  const auto& path = args.positionals().front();
  obs::crash_dump dump;
  try {
    if (!obs::read_crash_dump_file(path, dump)) {
      std::cerr << "spechd doctor: '" << path
                << "' is not a parseable crash dump (bad magic/version or "
                   "truncated section)\n";
      return 1;
    }
  } catch (const spechd::error& e) {
    std::cerr << "spechd doctor: cannot read '" << path << "': " << e.what() << "\n";
    return 2;
  }

  const auto wall_s = static_cast<std::time_t>(dump.wall_ns / 1000000000ULL);
  char when[64] = "unknown";
  if (const auto* tm = std::gmtime(&wall_s)) {
    std::strftime(when, sizeof(when), "%Y-%m-%d %H:%M:%S UTC", tm);
  }
  std::cout << "crash dump " << path << " (format v" << dump.version << ")\n"
            << "  cause: "
            << (dump.signo != 0 ? std::string("signal ") + std::to_string(dump.signo) +
                                      " (" + strsignal(dump.signo) + ")"
                                : std::string("terminate/on-demand dump"))
            << "\n  pid " << dump.pid << ", written " << when << "\n";

  if (!dump.counters.empty() || !dump.gauges.empty()) {
    text_table table("metrics at crash");
    table.set_header({"metric", "value"});
    for (const auto& c : dump.counters) table.add_row({c.name, text_table::num(c.value)});
    for (const auto& g : dump.gauges) table.add_row({g.name, std::to_string(g.value)});
    table.print(std::cout);
  }
  if (!dump.histograms.empty()) {
    text_table table("histograms at crash");
    table.set_header({"histogram", "count", "sum"});
    for (const auto& h : dump.histograms) {
      table.add_row({h.name, text_table::num(h.count), text_table::num(h.sum)});
    }
    table.print(std::cout);
  }
  if (!dump.shards.empty()) {
    text_table table("shard status at crash");
    table.set_header({"shard", "health", "generation", "journal bytes",
                      "journal records", "queue depth"});
    for (std::size_t s = 0; s < dump.shards.size(); ++s) {
      const auto& sh = dump.shards[s];
      print_shard_status_row(table, s, sh.health, sh.generation, sh.journal_bytes,
                             sh.journal_records, sh.queue_depth);
    }
    table.print(std::cout);
  }
  print_flight_events(dump.events);
  return 0;
}

int cmd_serve(arg_list& args) {
  serve::serve_config config;
  config.pipeline.threads = 1;  // per-shard pools; shards are the parallelism
  std::size_t batch_size = 256;
  const auto shards_flag = args.take_option("--shards");
  if (shards_flag) config.shards = std::stoul(*shards_flag);
  if (const auto v = args.take_option("--queue")) config.queue_capacity = std::stoul(*v);
  if (const auto v = args.take_option("--batch")) batch_size = std::stoul(*v);
  if (const auto v = args.take_option("--threads")) config.pipeline.threads = std::stoul(*v);
  const auto threshold_flag = args.take_option("-t");
  if (threshold_flag) config.pipeline.distance_threshold = std::stod(*threshold_flag);
  if (const auto v = args.take_option("--publish-every")) config.publish_every = std::stoul(*v);
  if (const auto v = args.take_option("--journal-dir")) config.journal.dir = *v;
  if (args.take_flag("--atomic")) config.atomic_ingest = true;
  if (const int rc = arm_failpoint_flags(args, "serve")) return rc;
  const auto restore = args.take_option("--restore");
  const auto snapshot = args.take_option("--snapshot");
  const auto query_file = args.take_option("--query");
  const auto listen = args.take_option("--listen");
  const auto shed_depth = args.take_option("--shed-depth");
  const auto library = args.take_option("--library");
  std::size_t metrics_log_secs = 0;
  if (const auto v = args.take_option("--metrics-log")) metrics_log_secs = std::stoul(*v);
  // Slow-request ring knobs: capture threshold (default 10 ms) and the
  // every-Nth unconditional sample that keeps healthy-request breakdowns
  // in the ring next to the outliers.
  std::uint64_t slow_threshold_ns = obs::slow_ring::instance().threshold_ns();
  std::uint64_t slow_sample_every = 0;
  if (const auto v = args.take_option("--slow-threshold-us")) {
    slow_threshold_ns = std::stoull(*v) * 1000;
  }
  if (const auto v = args.take_option("--slow-sample")) {
    slow_sample_every = std::stoull(*v);
  }
  obs::slow_ring::instance().configure(slow_threshold_ns, slow_sample_every);
  // Crash-dump + watchdog knobs: --crash-dump pre-opens the dump file and
  // installs the fatal handlers; the watchdog flags (and optionally kills)
  // components silent past the deadline, producing a dump on the way out.
  const auto crash_dump_path = args.take_option("--crash-dump");
  std::uint64_t watchdog_deadline_ms = 0;
  std::uint64_t watchdog_kill_after_ms = 0;
  if (const auto v = args.take_option("--watchdog-deadline-ms")) {
    watchdog_deadline_ms = std::stoull(*v);
  }
  if (const auto v = args.take_option("--watchdog-kill-after-ms")) {
    watchdog_kill_after_ms = std::stoull(*v);
  }
  std::vector<std::string> ingest_files;
  while (const auto v = args.take_option("--ingest")) ingest_files.push_back(*v);
  if (const int rc = reject_leftovers(args, "serve", 0)) return rc;
  if (!restore && ingest_files.empty() && !query_file && !snapshot && !listen) {
    std::cerr << "serve: nothing to do (need --restore, --ingest, --query, "
                 "--snapshot, or --listen)\n";
    return 2;
  }
  if (batch_size == 0) {
    std::cerr << "serve: --batch must be >= 1\n";
    return 2;
  }
  if (config.publish_every == 0) {
    std::cerr << "serve: --publish-every must be >= 1\n";
    return 2;
  }
  if (metrics_log_secs > 0 && !listen) {
    std::cerr << "serve: --metrics-log requires --listen\n";
    return 2;
  }
  if (metrics_log_secs > 0 && get_log_level() > log_level::info) {
    // --metrics-log is an explicit request for the periodic info line;
    // don't let the warnings-only default threshold eat it.
    set_log_level(log_level::info);
  }
  if (watchdog_kill_after_ms > 0 && watchdog_deadline_ms == 0) {
    std::cerr << "serve: --watchdog-kill-after-ms requires --watchdog-deadline-ms\n";
    return 2;
  }

  // Install crash diagnostics *before* the service exists: a crash during
  // journal recovery should leave a dump too.
  if (crash_dump_path) {
    if (!obs::install_crash_handler(*crash_dump_path)) {
      std::cerr << "spechd serve: cannot open crash dump file '" << *crash_dump_path
                << "'\n";
      return 2;
    }
  }
  if (watchdog_deadline_ms > 0) {
    obs::watchdog::config wd;
    wd.deadline = std::chrono::milliseconds(watchdog_deadline_ms);
    wd.kill_after = std::chrono::milliseconds(watchdog_kill_after_ms);
    obs::watchdog::instance().start(wd);
  }

  if (restore) {
    // Configure from the snapshot's identity block so the restored service
    // is exactly the one that wrote it (restore_file re-validates). A
    // missing or corrupt snapshot is an operator-facing input error:
    // diagnose and exit 2 rather than surfacing a raw exception.
    try {
      apply_identity(config, serve::read_snapshot_identity_file(*restore));
    } catch (const spechd::error& e) {
      std::cerr << "spechd serve: cannot restore from '" << *restore
                << "': " << e.what() << "\n";
      return 2;
    }
  }

  if (!config.journal.dir.empty() && !restore) {
    // Resume semantics: a non-fresh journal directory pins the identity
    // the service must run with, so adopt it rather than demanding every
    // original flag be repeated — explicitly passed flags still win (and
    // recovery rejects them if they contradict the journal).
    try {
      if (const auto id = serve::probe_journal_dir(config.journal.dir)) {
        const double threshold = config.pipeline.distance_threshold;
        apply_identity(config, *id);
        if (!shards_flag) config.shards = id->shard_count;
        if (threshold_flag) config.pipeline.distance_threshold = threshold;
      }
    } catch (const spechd::error& e) {
      std::cerr << "spechd serve: cannot recover journal dir '" << config.journal.dir
                << "': " << e.what() << "\n";
      return 2;
    }
  }

  // Constructing a journaled service recovers the directory's state; bad
  // journal contents are input errors too.
  std::optional<serve::clustering_service> service_storage;
  try {
    service_storage.emplace(config);
  } catch (const spechd::error& e) {
    if (config.journal.dir.empty()) throw;
    std::cerr << "spechd serve: cannot recover journal dir '" << config.journal.dir
              << "': " << e.what() << "\n";
    return 2;
  }
  serve::clustering_service& service = *service_storage;
  if (service.recovery().recovered) {
    const auto& r = service.recovery();
    std::cout << "recovered " << service.stats().record_count << " records from "
              << config.journal.dir << " (" << r.batches_replayed
              << " journaled batches replayed";
    if (r.torn_bytes > 0) std::cout << ", " << r.torn_bytes << " torn bytes dropped";
    if (r.txn_batches_dropped > 0) {
      std::cout << ", " << r.txn_batches_dropped << " uncommitted txn batches dropped";
    }
    std::cout << ")\n";
  }
  if (restore) {
    try {
      service.restore_file(*restore);
    } catch (const spechd::error& e) {
      std::cerr << "spechd serve: cannot restore from '" << *restore
                << "': " << e.what() << "\n";
      return 2;
    }
    const auto stats = service.stats();
    std::cout << "restored " << stats.record_count << " records in "
              << stats.cluster_count << " clusters from " << *restore << "\n";
  }

  if (library) {
    // Load before --listen so the first networked query_topk already has
    // the library; a missing/corrupt/mismatched file is an input error.
    try {
      service.load_library(*library);
    } catch (const spechd::error& e) {
      std::cerr << "spechd serve: cannot load library '" << *library
                << "': " << e.what() << "\n";
      return 2;
    }
    std::cout << "loaded spectral library " << *library << "\n";
  }

  using clock = std::chrono::steady_clock;
  for (const auto& file : ingest_files) {
    auto spectra = read_any(file);
    const auto total = spectra.size();
    const auto start = clock::now();
    for (std::size_t offset = 0; offset < total; offset += batch_size) {
      const auto end = std::min(offset + batch_size, total);
      service.ingest({spectra.begin() + static_cast<std::ptrdiff_t>(offset),
                      spectra.begin() + static_cast<std::ptrdiff_t>(end)});
    }
    service.drain();
    const double seconds = std::chrono::duration<double>(clock::now() - start).count();
    std::cout << "ingested " << total << " spectra from " << file << " in " << seconds
              << " s (" << (seconds > 0 ? static_cast<double>(total) / seconds : 0.0)
              << " spectra/s)\n";
  }

  if (query_file) run_query_workload(service, *query_file);

  if (snapshot) {
    const auto start = clock::now();
    service.snapshot_file(*snapshot);
    const double seconds = std::chrono::duration<double>(clock::now() - start).count();
    std::cout << "snapshot written to " << *snapshot << " ("
              << std::filesystem::file_size(*snapshot) / 1024 << " KiB, " << seconds
              << " s)\n";
  }

  if (listen) {
    // Network front end: serve the framed binary protocol until SIGTERM/
    // SIGINT, then drain the service (journal catches up) before the
    // closing state report — a clean shutdown loses nothing enqueued.
    net::server_config net_config;
    try {
      std::tie(net_config.host, net_config.port) = net::split_host_port(*listen);
      if (shed_depth) net_config.shed_queue_depth = std::stoul(*shed_depth);
      net::server server(service, net_config);
      g_server.store(&server, std::memory_order_release);
      std::signal(SIGTERM, handle_shutdown_signal);
      std::signal(SIGINT, handle_shutdown_signal);
      std::cout << "serving on " << net_config.host << ":" << server.port()
                << " (" << config.shards << " shards)" << std::endl;

      // --metrics-log: one summary line per interval through util/log so
      // operators can tail progress without a client attached. The thread
      // wakes in short slices so shutdown never waits a full interval.
      std::atomic<bool> metrics_log_stop{false};
      std::thread metrics_log_thread;
      if (metrics_log_secs > 0) {
        metrics_log_thread = std::thread([&service, &metrics_log_stop, metrics_log_secs] {
          std::uint64_t last_requests = 0;
          while (!metrics_log_stop.load(std::memory_order_relaxed)) {
            for (std::size_t slept = 0;
                 slept < metrics_log_secs * 10 &&
                 !metrics_log_stop.load(std::memory_order_relaxed);
                 ++slept) {
              std::this_thread::sleep_for(std::chrono::milliseconds(100));
            }
            if (metrics_log_stop.load(std::memory_order_relaxed)) break;
            const auto snap = obs::registry::instance().snapshot();
            const std::uint64_t requests =
                counter_or_zero(snap, "spechd_net_requests_total");
            log_record line = log_info();
            line << "metrics: requests=" << requests << " (+"
                 << (requests - last_requests) << ") shed="
                 << counter_or_zero(snap, "spechd_net_shed_total") << " ingested="
                 << counter_or_zero(snap, "spechd_ingest_records_total")
                 << " queries="
                 << counter_or_zero(snap, "spechd_query_requests_total")
                 << " searches="
                 << counter_or_zero(snap, "spechd_search_requests_total")
                 << " fsyncs="
                 << counter_or_zero(snap, "spechd_journal_fsyncs_total")
                 << " queue_depth=" << service.queue_depth();
            if (const auto* h = snap.find_histogram("spechd_net_ingest_request_ns")) {
              line << " ingest_p99_us=" << h->percentile(0.99) / 1000.0;
            }
            if (const auto* h = snap.find_histogram("spechd_net_query_request_ns")) {
              line << " query_p99_us=" << h->percentile(0.99) / 1000.0;
            }
            last_requests = requests;
          }
        });
      }

      server.wait();
      g_server.store(nullptr, std::memory_order_release);
      metrics_log_stop.store(true, std::memory_order_relaxed);
      if (metrics_log_thread.joinable()) metrics_log_thread.join();
      const auto counters = server.counters();
      std::cout << "server stopped: " << counters.accepted << " connections, "
                << counters.requests << " requests, " << counters.shed
                << " shed, " << counters.protocol_errors << " protocol errors\n";
      // Final observability summary — the last line an operator sees on
      // SIGTERM answers "what did this process do with its life".
      const auto snap = obs::registry::instance().snapshot();
      std::uint64_t heal_attempts = 0;
      if (const auto maint = service.maintenance_stats()) {
        heal_attempts = maint->heal_attempts;
      }
      std::cout << "final metrics: " << counters.requests << " requests served, "
                << counter_or_zero(snap, "spechd_ingest_records_total")
                << " records ingested, "
                << counter_or_zero(snap, "spechd_query_requests_total") << " queries, "
                << counter_or_zero(snap, "spechd_search_requests_total")
                << " searches, " << counters.shed << " shed, " << heal_attempts
                << " heal attempts, "
                << counter_or_zero(snap, "spechd_journal_fsyncs_total")
                << " journal fsyncs\n";
    } catch (const spechd::error& e) {
      g_server.store(nullptr, std::memory_order_release);
      std::cerr << "spechd serve: " << e.what() << "\n";
      return 2;
    }
    service.drain();
  }

  // Stop the watchdog before the service's writer threads retire their
  // heartbeat slots during destruction — a clean shutdown must not be
  // mistaken for a stall (or killed mid-teardown by --watchdog-kill-after).
  if (watchdog_deadline_ms > 0) obs::watchdog::instance().stop();

  print_service_state(service);
  return 0;
}

/// Minimal remote workload driver over the binary protocol — the
/// operational counterpart of `serve --listen` (and what the CI loopback
/// smoke job exercises end-to-end).
int cmd_client(arg_list& args) {
  const auto connect = args.take_option("--connect");
  std::size_t batch_size = 256;
  net::client_config client_config;
  if (const auto v = args.take_option("--batch")) batch_size = std::stoul(*v);
  if (const auto v = args.take_option("--timeout")) {
    client_config.timeout = std::chrono::milliseconds(std::stoul(*v));
  }
  const auto query_file = args.take_option("--query");
  const auto search_file = args.take_option("--search");
  std::size_t top_k = 5;
  if (const auto v = args.take_option("--topk")) top_k = std::stoul(*v);
  double tolerance = 0.0;
  if (const auto v = args.take_option("--tolerance")) tolerance = std::stod(*v);
  const bool want_ping = args.take_flag("--ping");
  const bool want_stats = args.take_flag("--stats");
  const bool want_drain = args.take_flag("--drain");
  const bool want_metrics = args.take_flag("--metrics");
  const bool want_debug_dump = args.take_flag("--debug-dump");
  std::size_t watch_secs = 0;
  if (const auto v = args.take_option("--watch")) watch_secs = std::stoul(*v);
  std::string metrics_format = "table";
  if (const auto v = args.take_option("--format")) metrics_format = *v;
  std::vector<std::string> ingest_files;
  while (const auto v = args.take_option("--ingest")) ingest_files.push_back(*v);
  if (const int rc = reject_leftovers(args, "client", 0)) return rc;
  if (!connect) {
    std::cerr << "client: missing --connect HOST:PORT\n";
    return 2;
  }
  if (batch_size == 0) {
    std::cerr << "client: --batch must be >= 1\n";
    return 2;
  }
  if (search_file && top_k == 0) {
    std::cerr << "client: --topk must be >= 1\n";
    return 2;
  }
  if (metrics_format != "table" && metrics_format != "prom") {
    std::cerr << "client: --format must be 'table' or 'prom'\n";
    return 2;
  }
  if (watch_secs > 0 && !want_metrics) {
    std::cerr << "client: --watch requires --metrics\n";
    return 2;
  }

  const auto [host, port] = net::split_host_port(*connect);
  net::client client(host, port, client_config);
  if (want_ping) {
    client.ping();
    std::cout << "pong from " << *connect << "\n";
  }

  using clock = std::chrono::steady_clock;
  for (const auto& file : ingest_files) {
    auto spectra = read_any(file);
    const auto total = spectra.size();
    std::size_t accepted = 0;
    std::size_t shed = 0;
    const auto start = clock::now();
    for (std::size_t offset = 0; offset < total; offset += batch_size) {
      const auto end = std::min(offset + batch_size, total);
      const std::vector<ms::spectrum> batch(
          spectra.begin() + static_cast<std::ptrdiff_t>(offset),
          spectra.begin() + static_cast<std::ptrdiff_t>(end));
      // Shed batches are retried after a short backoff — admission control
      // asks the producer to slow down, not to drop data.
      for (;;) {
        const auto r = client.ingest(batch);
        if (r.accepted) {
          accepted += r.count;
          break;
        }
        ++shed;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    const double seconds = std::chrono::duration<double>(clock::now() - start).count();
    std::cout << "ingested " << accepted << " spectra from " << file << " in "
              << seconds << " s";
    if (shed > 0) std::cout << " (" << shed << " shed responses, retried)";
    std::cout << "\n";
  }

  if (query_file) {
    const auto queries = read_any(*query_file);
    std::size_t matched = 0;
    std::size_t unencodable = 0;
    std::vector<double> latencies_us;
    latencies_us.reserve(queries.size());
    for (const auto& q : queries) {
      const auto start = clock::now();
      const auto r = client.query(q);
      latencies_us.push_back(
          std::chrono::duration<double, std::micro>(clock::now() - start).count());
      if (!r.encodable) {
        ++unencodable;
      } else if (r.matched) {
        ++matched;
      }
    }
    std::sort(latencies_us.begin(), latencies_us.end());
    text_table table("remote query workload: " + *query_file);
    table.set_header({"metric", "value"});
    table.add_row({"queries", text_table::num(queries.size())});
    table.add_row({"matched", text_table::num(matched)});
    table.add_row({"unmatched",
                   text_table::num(queries.size() - matched - unencodable)});
    table.add_row({"unencodable", text_table::num(unencodable)});
    table.add_row({"latency p50 (us)",
                   text_table::num(percentile_sorted(latencies_us, 0.50), 1)});
    table.add_row({"latency p99 (us)",
                   text_table::num(percentile_sorted(latencies_us, 0.99), 1)});
    table.print(std::cout);
  }

  if (search_file) {
    // Same output lines as `spechd search` in-process — the CI smoke job
    // diffs the two byte for byte.
    const auto queries = read_any(*search_file);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      print_search_hits(i, client.search(queries[i],
                                         static_cast<std::uint32_t>(top_k), tolerance));
    }
  }

  if (want_drain) {
    client.drain();
    std::cout << "drained\n";
  }

  if (want_stats) {
    const auto s = client.stats();
    text_table table("remote service stats: " + *connect);
    table.set_header({"counter", "value"});
    table.add_row({"records", text_table::num(s.record_count)});
    table.add_row({"clusters", text_table::num(s.cluster_count)});
    table.add_row({"ingested", text_table::num(s.ingested)});
    table.add_row({"batches", text_table::num(s.batches)});
    table.add_row({"queue depth", text_table::num(s.queue_depth)});
    table.add_row({"degraded shards", text_table::num(s.degraded_shards)});
    table.add_row({"failed shards", text_table::num(s.failed_shards)});
    table.add_row({"server requests", text_table::num(s.requests)});
    table.add_row({"server shed", text_table::num(s.shed)});
    table.print(std::cout);
  }

  if (want_debug_dump) {
    const auto dump = client.debug_dump();
    std::cout << "debug dump from " << *connect << ": "
              << dump.total_events_recorded << " events recorded, "
              << dump.events.size() << " in the rings\n";
    if (!dump.shards.empty()) {
      text_table table("shard status");
      table.set_header({"shard", "health", "generation", "journal bytes",
                        "journal records", "queue depth"});
      for (const auto& sh : dump.shards) {
        print_shard_status_row(table, sh.shard, sh.health, sh.generation,
                               sh.journal_bytes, sh.journal_records, sh.queue_depth);
      }
      table.print(std::cout);
    }
    if (!dump.stalled.empty()) {
      std::cout << "WARNING: " << dump.stalled.size() << " stalled component(s):";
      for (const auto& name : dump.stalled) std::cout << " " << name;
      std::cout << "\n";
    }
    print_flight_events(dump.events);
  }

  if (want_metrics && watch_secs == 0) {
    const auto m = client.metrics();
    if (metrics_format == "prom") {
      std::cout << obs::render_prom(m.snapshot);
    } else {
      print_metrics_tables(m, *connect);
    }
  }

  if (want_metrics && watch_secs > 0) {
    // Interval mode: scrape every --watch seconds and report deltas/rates
    // (and interval percentiles from bucket diffs) until interrupted or
    // the server goes away.
    net::wire_metrics prev = client.metrics();
    auto prev_at = clock::now();
    for (;;) {
      std::this_thread::sleep_for(std::chrono::seconds(watch_secs));
      const auto cur = client.metrics();
      const auto now = clock::now();
      const double seconds = std::chrono::duration<double>(now - prev_at).count();
      if (metrics_format == "prom") {
        std::cout << obs::render_prom(cur.snapshot);
      } else {
        print_metrics_interval(cur, prev, seconds);
      }
      std::cout.flush();
      prev = cur;
      prev_at = now;
    }
  }
  return 0;
}

int cmd_recover(arg_list& args) {
  const auto dir = args.take_option("--journal-dir");
  const auto snapshot = args.take_option("--snapshot");
  const auto query_file = args.take_option("--query");
  if (const int rc = arm_failpoint_flags(args, "recover")) return rc;
  if (const int rc = reject_leftovers(args, "recover", 0)) return rc;
  if (!dir) {
    std::cerr << "recover: missing --journal-dir\n";
    return 2;
  }

  serve::serve_config config;
  config.pipeline.threads = 1;
  config.journal.dir = *dir;
  std::optional<serve::clustering_service> service_storage;
  try {
    // Configure from the directory's own identity block (like
    // `serve --restore`), then let the service constructor replay
    // snapshot + journals; the shard count must match the journals'.
    const auto id = serve::probe_journal_dir(*dir);
    if (!id) {
      std::cerr << "spechd recover: no journal state found in '" << *dir << "'\n";
      return 2;
    }
    apply_identity(config, *id);
    config.shards = id->shard_count;
    // One line per journal generation replayed, so a large recovery shows
    // live progress instead of a silent pause.
    config.recovery_progress = [](const serve::recovery_progress& p) {
      std::cout << "  replaying shard " << p.shard << " generation " << p.generation
                << ": " << p.records_replayed << " records ("
                << p.total_records_replayed << " total, "
                << text_table::num(p.records_per_sec, 0) << " records/s)";
      if (p.torn_tail) {
        std::cout << " [torn tail: " << p.torn_bytes << " bytes dropped]";
      }
      std::cout << "\n";
    };
    service_storage.emplace(config);
  } catch (const spechd::error& e) {
    std::cerr << "spechd recover: cannot recover from '" << *dir << "': " << e.what()
              << "\n";
    return 2;
  }
  serve::clustering_service& service = *service_storage;

  const auto& report = service.recovery();
  const auto stats = service.stats();
  std::cout << "recovered " << stats.record_count << " records in "
            << stats.cluster_count << " clusters from " << *dir << " in "
            << report.seconds << " s\n"
            << "  base snapshot: "
            << (report.base_snapshot_generation
                    ? "generation " + std::to_string(*report.base_snapshot_generation)
                    : std::string("none (replayed from empty)"))
            << "\n  journal files: " << report.journal_files << ", batches replayed: "
            << report.batches_replayed << " (" << report.spectra_replayed
            << " spectra), reclusters replayed: " << report.reclusters_replayed << "\n";
  if (report.torn_bytes > 0) {
    std::cout << "  torn tail: " << report.torn_bytes
              << " bytes past the last complete record dropped\n";
  }
  if (report.txn_batches_dropped > 0) {
    std::cout << "  atomic ingest: " << report.txn_batches_dropped
              << " batch(es) from uncommitted transactions dropped\n";
  }

  if (query_file) run_query_workload(service, *query_file);
  if (snapshot) {
    service.snapshot_file(*snapshot);
    std::cout << "snapshot written to " << *snapshot << " ("
              << std::filesystem::file_size(*snapshot) / 1024 << " KiB)\n";
  }
  print_service_state(service);
  return 0;
}

int cmd_search(arg_list& args) {
  core::spechd_config pipeline_config;
  if (const auto v = args.take_option("--dim")) pipeline_config.encoder.dim = std::stoul(*v);
  const auto build = args.take_option("--build");
  const auto fasta = args.take_option("--fasta");
  const auto ref_spectra = args.take_option("--spectra");
  const auto library = args.take_option("--library");
  const auto query_file = args.take_option("--query");
  std::size_t top_k = 5;
  if (const auto v = args.take_option("--topk")) top_k = std::stoul(*v);
  double tolerance = 0.0;
  if (const auto v = args.take_option("--tolerance")) tolerance = std::stod(*v);
  int missed = 0;
  if (const auto v = args.take_option("--missed")) missed = std::stoi(*v);
  std::vector<int> charges{2, 3};
  if (const auto v = args.take_option("--charges")) {
    charges.clear();
    std::stringstream list(*v);
    std::string token;
    while (std::getline(list, token, ',')) {
      if (!token.empty()) charges.push_back(std::stoi(token));
    }
    if (charges.empty()) {
      std::cerr << "search: --charges needs a comma-separated charge list\n";
      return 2;
    }
  }
  if (const int rc = reject_leftovers(args, "search", 0)) return rc;
  if (top_k == 0) {
    std::cerr << "search: --topk must be >= 1\n";
    return 2;
  }

  if (build) {
    if (static_cast<bool>(fasta) == static_cast<bool>(ref_spectra)) {
      std::cerr << "search: --build needs exactly one of --fasta or --spectra\n";
      return 2;
    }
    serve::spectral_library lib;
    if (fasta) {
      const auto peptides =
          ms::library_from_fasta(ms::read_fasta_file(*fasta), missed);
      lib = serve::spectral_library::from_peptides(peptides, charges, pipeline_config);
    } else {
      lib = serve::spectral_library::from_spectra(read_any(*ref_spectra),
                                                  pipeline_config);
    }
    lib.save(*build);
    std::cout << "built spectral library " << *build << ": " << lib.size()
              << " entries in " << lib.bucket_count() << " buckets ("
              << lib.dropped() << " dropped by preprocessing)\n";
    if (!query_file) return 0;
  }

  if (!query_file) {
    std::cerr << "search: nothing to do (need --build, or --library with --query)\n";
    return 2;
  }
  const std::string lib_path = library ? *library : (build ? *build : std::string{});
  if (lib_path.empty()) {
    std::cerr << "search: missing --library\n";
    return 2;
  }

  // Search through a clustering_service — the exact code path `serve
  // --library --listen` answers query_topk with — so in-process results
  // are the golden reference for the networked ones. A missing or corrupt
  // library file is an operator input error: diagnose and exit 2.
  serve::serve_config config;
  config.pipeline = pipeline_config;
  config.pipeline.threads = 1;
  config.shards = 1;
  std::optional<serve::clustering_service> service_storage;
  try {
    const auto identity = serve::spectral_library::load(lib_path).identity();
    config.pipeline.encoder.dim = identity.dim;
    config.pipeline.encoder.seed = identity.encoder_seed;
    config.pipeline.preprocess.bucketing.resolution = identity.bucket_resolution;
    config.pipeline.preprocess.bucketing.fallback_charge = identity.fallback_charge;
    service_storage.emplace(config);
    service_storage->load_library(lib_path);
  } catch (const spechd::error& e) {
    std::cerr << "spechd search: cannot load library '" << lib_path << "': " << e.what()
              << "\n";
    return 2;
  }
  const auto queries = read_any(*query_file);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    print_search_hits(i, service_storage->search(queries[i], top_k, tolerance));
  }
  return 0;
}

int cmd_model(arg_list& args) {
  const bool overlap = args.take_flag("--overlap");
  if (const int rc = reject_leftovers(args, "model", 0)) return rc;
  text_table table(overlap ? "SpecHD pipelined (DES) model" : "SpecHD phase model");
  if (overlap) {
    table.set_header({"dataset", "pipelined (s)", "end-to-end (s)", "encoder util"});
    for (const auto& ds : ms::paper_datasets()) {
      const auto r = fpga::simulate_dataflow(ds, {});
      table.add_row({std::string(ds.pride_id), text_table::num(r.pipeline_s, 1),
                     text_table::num(r.makespan_s, 1),
                     text_table::num(r.encoder_utilisation * 100.0, 1) + "%"});
    }
  } else {
    table.set_header({"dataset", "PP (s)", "encode (s)", "cluster (s)", "total (s)",
                      "energy (kJ)"});
    for (const auto& ds : ms::paper_datasets()) {
      const auto run = fpga::model_spechd_run(ds, {});
      table.add_row({std::string(ds.pride_id), text_table::num(run.time.preprocess, 1),
                     text_table::num(run.time.encode, 1),
                     text_table::num(run.time.cluster, 1),
                     text_table::num(run.time.end_to_end(), 1),
                     text_table::num(run.energy.end_to_end() / 1e3, 2)});
    }
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A peer disconnecting mid-write must be an EPIPE errno, not a fatal
  // signal — both server and client send with MSG_NOSIGNAL, but third-
  // party code (or a future write path) must not be able to kill the
  // process either.
  std::signal(SIGPIPE, SIG_IGN);
  if (argc < 2) return usage_error();
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    print_usage(std::cout);
    return 0;
  }
  arg_list args(argc, argv, 2);
  try {
    if (command == "synth") return cmd_synth(args);
    if (command == "info") return cmd_info(args);
    if (command == "encode") return cmd_encode(args);
    if (command == "cluster") return cmd_cluster(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "client") return cmd_client(args);
    if (command == "recover") return cmd_recover(args);
    if (command == "search") return cmd_search(args);
    if (command == "doctor") return cmd_doctor(args);
    if (command == "model") return cmd_model(args);
    std::cerr << "unknown command: " << command << "\n";
    return usage_error();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
