#include "fpga/kernels.hpp"

#include <gtest/gtest.h>

namespace spechd::fpga {
namespace {

TEST(EncoderKernel, CyclesScaleWithPeaks) {
  encoder_kernel_config c;
  const auto c10 = encoder_cycles_per_spectrum(10, c);
  const auto c50 = encoder_cycles_per_spectrum(50, c);
  EXPECT_GT(c50, c10);
  // Bind loop dominates: roughly linear in peak count.
  EXPECT_NEAR(static_cast<double>(c50) / c10, 4.0, 1.5);
}

TEST(EncoderKernel, UnrollSpeedsUp) {
  encoder_kernel_config narrow;
  narrow.bind_unroll = 64;
  encoder_kernel_config wide;
  wide.bind_unroll = 512;
  EXPECT_GT(encoder_cycles_per_spectrum(50, narrow),
            encoder_cycles_per_spectrum(50, wide));
}

TEST(EncoderKernel, BatchIsPerSpectrumTimesCount) {
  encoder_kernel_config c;
  const auto per = encoder_cycles_per_spectrum(50, c);
  EXPECT_EQ(encoder_cycles(1000, 50.0, c), 1000 * per);
}

TEST(ClusterKernel, DistancePhaseQuadratic) {
  cluster_kernel_config c;
  const auto d100 = distance_phase_cycles(100, c);
  const auto d200 = distance_phase_cycles(200, c);
  // Pairs grow 4.02x, cycles should track.
  EXPECT_NEAR(static_cast<double>(d200) / d100, 4.0, 0.3);
}

TEST(ClusterKernel, TrivialBucketsCheap) {
  cluster_kernel_config c;
  EXPECT_EQ(distance_phase_cycles(0, c), 0U);
  EXPECT_EQ(distance_phase_cycles(1, c), 0U);
  EXPECT_EQ(cluster_bucket_cycles(1, c), c.per_bucket_overhead);
}

TEST(ClusterKernel, StatsPathMatchesAnalyticShape) {
  cluster_kernel_config c;
  cluster::hac_stats stats;
  const std::uint64_t n = 200;
  stats.comparisons = 3 * n * n;
  stats.distance_updates = n * n / 2;
  stats.merges = n - 1;
  EXPECT_EQ(nn_chain_phase_cycles(stats, c), nn_chain_phase_cycles_analytic(n, c));
}

TEST(ClusterKernel, MoreLanesFewerCycles) {
  cluster_kernel_config narrow;
  narrow.scan_lanes = 4;
  cluster_kernel_config wide;
  wide.scan_lanes = 32;
  EXPECT_GT(nn_chain_phase_cycles_analytic(500, narrow),
            nn_chain_phase_cycles_analytic(500, wide));
}

TEST(ClusterKernel, BucketCyclesComposePhases) {
  cluster_kernel_config c;
  const std::uint64_t n = 300;
  EXPECT_EQ(cluster_bucket_cycles(n, c),
            distance_phase_cycles(n, c) + nn_chain_phase_cycles_analytic(n, c) +
                c.per_bucket_overhead);
}

}  // namespace
}  // namespace spechd::fpga
