#include "fpga/tool_models.hpp"

#include <gtest/gtest.h>

namespace spechd::fpga {
namespace {

ms::dataset_descriptor largest() { return ms::paper_datasets()[4]; }

TEST(ToolModels, NamesDistinct) {
  EXPECT_EQ(tool_name(tool::spechd), "SpecHD");
  EXPECT_EQ(tool_name(tool::hyperspec_hac), "HyperSpec-HAC");
  EXPECT_EQ(tool_name(tool::gleams), "GLEAMS");
}

TEST(ToolModels, SpecHdFastestEndToEnd) {
  const auto runs = model_all_tools(largest(), {}, {});
  const double spechd = runs[0].time.end_to_end();
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_GT(runs[i].time.end_to_end(), spechd) << tool_name(runs[i].which);
  }
}

TEST(ToolModels, EndToEndSpeedupsInPaperRegime) {
  // Fig. 7: 6x over HyperSpec(-HAC), 31-54x over GLEAMS; msCRUSH/Falcon in
  // between. The model should land in the right bands (generous margins).
  const auto runs = model_all_tools(largest(), {}, {});
  const double spechd = runs[0].time.end_to_end();
  const double hyperspec = runs[1].time.end_to_end() / spechd;
  const double gleams = runs[3].time.end_to_end() / spechd;
  EXPECT_GT(hyperspec, 3.0);
  EXPECT_LT(hyperspec, 15.0);
  EXPECT_GT(gleams, 20.0);
  EXPECT_LT(gleams, 80.0);
}

TEST(ToolModels, StandaloneClusteringAnchors) {
  // Fig. 8 anchors for PXD000561: HyperSpec ~12.3x, GLEAMS ~14.3x,
  // Falcon ~100x vs SpecHD standalone clustering.
  const auto runs = model_all_tools(largest(), {}, {});
  const double spechd = runs[0].time.standalone_clustering();
  const double hyperspec = runs[1].time.standalone_clustering() / spechd;
  const double gleams = runs[3].time.standalone_clustering() / spechd;
  const double falcon = runs[4].time.standalone_clustering() / spechd;
  EXPECT_GT(hyperspec, 5.0);
  EXPECT_LT(hyperspec, 30.0);
  EXPECT_GT(gleams, 6.0);
  EXPECT_LT(gleams, 35.0);
  EXPECT_GT(falcon, 40.0);
  EXPECT_LT(falcon, 250.0);
}

TEST(ToolModels, DbscanFlavourFasterThanHacClustering) {
  const auto runs = model_all_tools(largest(), {}, {});
  EXPECT_LT(runs[2].time.cluster, runs[1].time.cluster);
}

TEST(ToolModels, EnergyEfficiencyRatiosInPaperRegime) {
  // Fig. 9: end-to-end 31x vs HyperSpec-HAC, 14x vs HyperSpec-DBSCAN;
  // clustering-phase 40x and 12x.
  const auto runs = model_all_tools(largest(), {}, {});
  const double spechd_e2e = runs[0].energy.end_to_end();
  const double spechd_cl = runs[0].energy.standalone_clustering();
  const double hac_e2e = runs[1].energy.end_to_end() / spechd_e2e;
  const double db_e2e = runs[2].energy.end_to_end() / spechd_e2e;
  const double hac_cl = runs[1].energy.standalone_clustering() / spechd_cl;
  const double db_cl = runs[2].energy.standalone_clustering() / spechd_cl;
  EXPECT_GT(hac_e2e, 10.0);
  EXPECT_LT(hac_e2e, 90.0);
  EXPECT_GT(db_e2e, 5.0);
  EXPECT_LT(db_e2e, 50.0);
  EXPECT_GT(hac_cl, 15.0);
  EXPECT_LT(hac_cl, 120.0);
  EXPECT_GT(db_cl, 4.0);
  EXPECT_LT(db_cl, 40.0);
  EXPECT_GT(hac_cl, db_cl);  // HAC on CPU costs more energy than GPU DBSCAN
}

TEST(ToolModels, PreprocessDominatesConventionalTools) {
  // Sec. II-B: loading/preprocessing ~82% of conventional tools' runtime.
  const auto run = model_tool_run(tool::hyperspec_dbscan, ms::paper_datasets()[2], {}, {});
  EXPECT_GT(run.time.preprocess / run.time.end_to_end(), 0.5);
}

TEST(ToolModels, PairCountGrowsWithDataset) {
  spechd_hw_config hw;
  EXPECT_LT(modelled_pair_count(ms::paper_datasets()[0], hw),
            modelled_pair_count(ms::paper_datasets()[4], hw));
}

}  // namespace
}  // namespace spechd::fpga
