#include "fpga/resources.hpp"

#include <gtest/gtest.h>

namespace spechd::fpga {
namespace {

TEST(Resources, PaperConfigurationFitsU280) {
  // 1 encoder + 5 cluster CUs at the calibrated datapath widths must fit
  // the card the paper used.
  const auto usage = estimate_design(encoder_kernel_config{}, 1,
                                     cluster_kernel_config{}, 5, 34000, 64, 2000);
  EXPECT_LT(worst_utilisation(usage, u280_capacity()), 1.0)
      << "LUT " << usage.luts << " FF " << usage.ffs << " BRAM " << usage.bram36
      << " URAM " << usage.uram << " DSP " << usage.dsps;
}

TEST(Resources, UsageScalesWithKernelCount) {
  const auto one = estimate_design({}, 1, {}, 1, 34000, 64, 2000);
  const auto five = estimate_design({}, 1, {}, 5, 34000, 64, 2000);
  EXPECT_GT(five.luts, one.luts);
  EXPECT_GT(five.dsps, one.dsps);
}

TEST(Resources, WiderDatapathCostsMoreLuts) {
  cluster_kernel_config narrow;
  narrow.xor_popcount_width = 64;
  cluster_kernel_config wide;
  wide.xor_popcount_width = 512;
  EXPECT_GT(estimate_cluster_kernel(wide, 2000).luts,
            estimate_cluster_kernel(narrow, 2000).luts);
}

TEST(Resources, ItemMemoryScalesWithBins) {
  const auto small = estimate_encoder({}, 1000, 64);
  const auto large = estimate_encoder({}, 34000, 64);
  EXPECT_GT(large.uram, small.uram);
}

TEST(Resources, MatrixTileCapped) {
  // Huge buckets spill to HBM: on-chip URAM stops growing.
  const auto medium = estimate_cluster_kernel({}, 2'000);
  const auto huge = estimate_cluster_kernel({}, 200'000);
  EXPECT_EQ(huge.uram, medium.uram);
}

TEST(Resources, ManyKernelsEventuallyDoNotFit) {
  // Some CU count must exceed the fabric — the DSE bound is real.
  bool found_infeasible = false;
  for (unsigned kernels = 5; kernels <= 640; kernels *= 2) {
    const auto usage = estimate_design({}, 1, {}, kernels, 34000, 64, 2000);
    if (worst_utilisation(usage, u280_capacity()) > 1.0) {
      found_infeasible = true;
      break;
    }
  }
  EXPECT_TRUE(found_infeasible);
}

TEST(Resources, HeadroomTightensFit) {
  const auto usage = estimate_design({}, 2, {}, 8, 34000, 64, 2000);
  EXPECT_GT(worst_utilisation(usage, u280_capacity(), true),
            worst_utilisation(usage, u280_capacity(), false));
}

TEST(Resources, AccumulateAndScaleOperators) {
  resource_usage a;
  a.luts = 10;
  a.dsps = 2;
  resource_usage b;
  b.luts = 5;
  b.bram36 = 3;
  a += b;
  EXPECT_DOUBLE_EQ(a.luts, 15.0);
  EXPECT_DOUBLE_EQ(a.bram36, 3.0);
  const auto doubled = a * 2.0;
  EXPECT_DOUBLE_EQ(doubled.luts, 30.0);
  EXPECT_DOUBLE_EQ(doubled.dsps, 4.0);
}

}  // namespace
}  // namespace spechd::fpga
