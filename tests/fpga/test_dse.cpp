#include "fpga/dse.hpp"

#include <gtest/gtest.h>

namespace spechd::fpga {
namespace {

dse_sweep small_sweep() {
  dse_sweep s;
  s.cluster_kernels = {1, 5};
  s.encoder_kernels = {1};
  s.resolutions = {0.08, 1.0};
  s.p2p = {true, false};
  s.dims = {2048};
  return s;
}

TEST(Dse, EnumeratesCrossProduct) {
  const auto points = explore(ms::paper_datasets()[0], {}, small_sweep());
  EXPECT_EQ(points.size(), 2U * 1U * 2U * 2U * 1U);
}

TEST(Dse, SortedByEdp) {
  const auto points = explore(ms::paper_datasets()[0], {}, small_sweep());
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i - 1].edp(), points[i].edp());
  }
}

TEST(Dse, BestPointUsesP2p) {
  const auto points = explore(ms::paper_datasets()[2], {}, small_sweep());
  ASSERT_FALSE(points.empty());
  EXPECT_TRUE(points.front().p2p);
}

TEST(Dse, FiveKernelsBeatOneOnClusterTime) {
  const auto points = explore(ms::paper_datasets()[2], {}, small_sweep());
  double best_one = 1e300;
  double best_five = 1e300;
  for (const auto& p : points) {
    if (!p.p2p || p.bucket_resolution != 0.08) continue;
    if (p.cluster_kernels == 1) best_one = std::min(best_one, p.cluster_s);
    if (p.cluster_kernels == 5) best_five = std::min(best_five, p.cluster_s);
  }
  EXPECT_LT(best_five, best_one);
}

TEST(Dse, LargerDimCostsMoreTime) {
  dse_sweep s;
  s.cluster_kernels = {5};
  s.encoder_kernels = {1};
  s.resolutions = {0.08};
  s.p2p = {true};
  s.dims = {1024, 4096};
  const auto points = explore(ms::paper_datasets()[1], {}, s);
  ASSERT_EQ(points.size(), 2U);
  const auto& small = points[0].dim == 1024 ? points[0] : points[1];
  const auto& large = points[0].dim == 4096 ? points[0] : points[1];
  EXPECT_LT(small.cluster_s, large.cluster_s);
}

TEST(Dse, HbmFitTrackedForHugeDims) {
  dse_sweep s;
  s.cluster_kernels = {5};
  s.encoder_kernels = {1};
  s.resolutions = {0.08};
  s.p2p = {true};
  s.dims = {2048};
  // 21.1M spectra x 256 B = 5.4 GB -> fits 8 GB HBM.
  const auto points = explore(ms::paper_datasets()[4], {}, s);
  ASSERT_EQ(points.size(), 1U);
  EXPECT_TRUE(points.front().fits_hbm);
}

}  // namespace
}  // namespace spechd::fpga
