#include "fpga/hls_kernel.hpp"

#include <gtest/gtest.h>

namespace spechd::fpga {
namespace {

TEST(PipelinedLoop, StandardFormula) {
  // cycles = depth + (trips - 1) * II for unroll = 1.
  pipelined_loop l{.trips = 100, .unroll = 1, .ii = 1, .depth = 10};
  EXPECT_EQ(l.cycles(), 10 + 99U);
}

TEST(PipelinedLoop, UnrollDividesTrips) {
  pipelined_loop l{.trips = 128, .unroll = 8, .ii = 1, .depth = 4};
  EXPECT_EQ(l.cycles(), 4 + 15U);
}

TEST(PipelinedLoop, UnrollCeilsPartialGroups) {
  pipelined_loop l{.trips = 130, .unroll = 8, .ii = 1, .depth = 4};
  EXPECT_EQ(l.cycles(), 4 + 16U);
}

TEST(PipelinedLoop, IiMultipliesSteadyState) {
  pipelined_loop l{.trips = 10, .unroll = 1, .ii = 3, .depth = 5};
  EXPECT_EQ(l.cycles(), 5 + 9U * 3U);
}

TEST(PipelinedLoop, ZeroTripsZeroCycles) {
  pipelined_loop l{.trips = 0, .unroll = 4, .ii = 1, .depth = 100};
  EXPECT_EQ(l.cycles(), 0U);
}

TEST(Composition, SequentialAdds) {
  std::vector<pipelined_loop> loops = {
      {.trips = 10, .unroll = 1, .ii = 1, .depth = 1},
      {.trips = 20, .unroll = 1, .ii = 1, .depth = 1},
  };
  EXPECT_EQ(sequential_cycles(loops), 10U + 20U);
}

TEST(Composition, DataflowTakesMax) {
  EXPECT_EQ(dataflow_cycles({100, 300, 200}), 300U);
  EXPECT_EQ(dataflow_cycles({}), 0U);
}

TEST(CyclesToSeconds, ClockConversion) {
  EXPECT_DOUBLE_EQ(cycles_to_seconds(300'000'000, 300e6), 1.0);
  EXPECT_DOUBLE_EQ(cycles_to_seconds(100, 0.0), 0.0);
}

}  // namespace
}  // namespace spechd::fpga
