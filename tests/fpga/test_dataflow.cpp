#include "fpga/dataflow.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace spechd::fpga {
namespace {

TEST(BucketModel, SizesSumToSpectrumCount) {
  spechd_hw_config hw;
  const std::uint64_t n = 1'000'000;
  const auto sizes = model_bucket_sizes(n, hw);
  const auto total = std::accumulate(sizes.begin(), sizes.end(), std::uint64_t{0});
  EXPECT_EQ(total, n);
  for (const auto s : sizes) EXPECT_GE(s, 1U);
}

TEST(BucketModel, FinerResolutionMoreBuckets) {
  spechd_hw_config coarse;
  coarse.bucket_resolution = 1.0;
  spechd_hw_config fine;
  fine.bucket_resolution = 0.05;
  const auto nc = model_bucket_sizes(1'000'000, coarse).size();
  const auto nf = model_bucket_sizes(1'000'000, fine).size();
  EXPECT_GT(nf, nc);
}

TEST(BucketModel, Deterministic) {
  spechd_hw_config hw;
  EXPECT_EQ(model_bucket_sizes(100000, hw), model_bucket_sizes(100000, hw));
}

TEST(Makespan, BoundsRespected) {
  const std::vector<std::uint64_t> jobs = {50, 30, 20, 10, 40};
  const auto total = std::accumulate(jobs.begin(), jobs.end(), std::uint64_t{0});
  for (unsigned k = 1; k <= 5; ++k) {
    const auto m = schedule_makespan_cycles(jobs, k);
    EXPECT_GE(m, 50U) << k;               // >= longest job
    EXPECT_GE(m, total / k) << k;         // >= perfect split
    EXPECT_LE(m, total) << k;             // <= serial execution
  }
}

TEST(Makespan, OneKernelIsSerial) {
  EXPECT_EQ(schedule_makespan_cycles({5, 10, 15}, 1), 30U);
}

TEST(Makespan, MoreKernelsNeverSlower) {
  std::vector<std::uint64_t> jobs;
  for (std::uint64_t i = 1; i <= 40; ++i) jobs.push_back(i * 7 % 100 + 1);
  std::uint64_t prev = schedule_makespan_cycles(jobs, 1);
  for (unsigned k = 2; k <= 8; ++k) {
    const auto m = schedule_makespan_cycles(jobs, k);
    EXPECT_LE(m, prev);
    prev = m;
  }
}

TEST(Makespan, EmptyOrZeroKernels) {
  EXPECT_EQ(schedule_makespan_cycles({}, 4), 0U);
  EXPECT_EQ(schedule_makespan_cycles({10}, 0), 0U);
}

TEST(SpechdRun, PhasesAllPositiveOnPaperDataset) {
  const auto ds = ms::paper_datasets()[4];  // PXD000561
  const auto run = model_spechd_run(ds, {});
  EXPECT_GT(run.time.preprocess, 0.0);
  EXPECT_GT(run.time.transfer, 0.0);
  EXPECT_GT(run.time.encode, 0.0);
  EXPECT_GT(run.time.cluster, 0.0);
  EXPECT_GT(run.time.consensus, 0.0);
  EXPECT_GT(run.energy.end_to_end(), 0.0);
}

TEST(SpechdRun, LargestDatasetAroundFiveMinutes) {
  // Abstract: "cluster a large-scale human proteome dataset ... in just
  // 5 minutes". The model should land in the same regime (60-400 s).
  const auto ds = ms::paper_datasets()[4];
  const auto run = model_spechd_run(ds, {});
  EXPECT_GT(run.time.end_to_end(), 60.0);
  EXPECT_LT(run.time.end_to_end(), 400.0);
}

TEST(SpechdRun, StandaloneClusteringNearPaperAnchor) {
  // Sec. IV-C: "Spec-HD clocked in at 80 seconds" for PXD000561.
  const auto ds = ms::paper_datasets()[4];
  const auto run = model_spechd_run(ds, {});
  EXPECT_GT(run.time.standalone_clustering(), 20.0);
  EXPECT_LT(run.time.standalone_clustering(), 240.0);
}

TEST(SpechdRun, P2pFasterThanHostStaged) {
  const auto ds = ms::paper_datasets()[2];
  spechd_hw_config p2p;
  p2p.p2p_enabled = true;
  spechd_hw_config host;
  host.p2p_enabled = false;
  EXPECT_LT(model_spechd_run(ds, p2p).time.transfer,
            model_spechd_run(ds, host).time.transfer);
}

TEST(SpechdRun, MoreClusterKernelsFasterClustering) {
  const auto ds = ms::paper_datasets()[1];
  spechd_hw_config one;
  one.cluster_kernels = 1;
  spechd_hw_config five;
  five.cluster_kernels = 5;
  EXPECT_LT(model_spechd_run(ds, five).time.cluster,
            model_spechd_run(ds, one).time.cluster);
}

TEST(SpechdRun, HvResidencyComputed) {
  const auto ds = ms::paper_datasets()[0];  // 1.1M spectra
  const auto run = model_spechd_run(ds, {});
  EXPECT_NEAR(run.hv_bytes, 1.1e6 * 256.0, 1e6);
  EXPECT_TRUE(run.fits_hbm);
}

}  // namespace
}  // namespace spechd::fpga
