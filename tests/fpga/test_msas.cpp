#include "fpga/msas.hpp"

#include <gtest/gtest.h>

namespace spechd::fpga {
namespace {

TEST(Msas, TimeMonotoneInDatasetSize) {
  const auto datasets = ms::paper_datasets();
  msas_config config;
  double prev = 0.0;
  for (const auto& ds : datasets) {
    const auto r = preprocess_dataset(ds, config);
    EXPECT_GT(r.time_s, prev) << ds.pride_id;
    prev = r.time_s;
  }
}

TEST(Msas, EnergyMonotoneInDatasetSize) {
  const auto datasets = ms::paper_datasets();
  msas_config config;
  double prev = 0.0;
  for (const auto& ds : datasets) {
    const auto r = preprocess_dataset(ds, config);
    EXPECT_GT(r.energy_j, prev) << ds.pride_id;
    prev = r.energy_j;
  }
}

// Table I anchor check: model within 35% of every published row (the model
// is calibrated to the ~3 GB/s effective streaming rate the table implies).
class MsasTableOne : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MsasTableOne, TimeAndEnergyNearPaper) {
  const auto ds = ms::paper_datasets()[GetParam()];
  const auto r = preprocess_dataset(ds, {});
  EXPECT_NEAR(r.time_s, ds.paper_pp_time_s, ds.paper_pp_time_s * 0.35)
      << ds.pride_id << " time";
  EXPECT_NEAR(r.energy_j, ds.paper_pp_energy_j, ds.paper_pp_energy_j * 0.35)
      << ds.pride_id << " energy";
}

INSTANTIATE_TEST_SUITE_P(AllRows, MsasTableOne, ::testing::Range<std::size_t>(0, 5));

TEST(Msas, StreamingOverlapsCompute) {
  const auto ds = ms::paper_datasets()[0];
  const auto r = preprocess_dataset(ds, {});
  EXPECT_GE(r.time_s, std::max(r.nand_stream_s, r.compute_s));
  EXPECT_LT(r.time_s, r.nand_stream_s + r.compute_s + 1.0);
}

TEST(Msas, OutputSmallerThanInput) {
  for (const auto& ds : ms::paper_datasets()) {
    const auto r = preprocess_dataset(ds, {});
    EXPECT_LT(r.output_gb, ds.size_gb) << ds.pride_id;
  }
}

TEST(Msas, TopKControlsOutputVolume) {
  const auto ds = ms::paper_datasets()[0];
  msas_config small;
  small.top_k = 25;
  msas_config large;
  large.top_k = 100;
  EXPECT_LT(preprocess_dataset(ds, small).output_gb,
            preprocess_dataset(ds, large).output_gb);
}

}  // namespace
}  // namespace spechd::fpga
