#include "fpga/des.hpp"

#include <gtest/gtest.h>

namespace spechd::fpga {
namespace {

TEST(Des, PipelineNeverSlowerThanAdditive) {
  for (const auto& ds : ms::paper_datasets()) {
    const auto r = simulate_dataflow(ds, {});
    EXPECT_LE(r.pipeline_s, r.additive_s * 1.02) << ds.pride_id;
    EXPECT_GE(r.overlap_saving, -0.02) << ds.pride_id;
  }
}

TEST(Des, PipelineAtLeastSlowestStage) {
  const auto ds = ms::paper_datasets()[4];
  const spechd_hw_config hw;
  const auto run = model_spechd_run(ds, hw);
  const auto r = simulate_dataflow(ds, hw);
  // The overlapped pipeline cannot beat its slowest single stage.
  const double slowest =
      std::max({run.time.transfer, run.time.encode, run.time.cluster});
  EXPECT_GE(r.pipeline_s, slowest * 0.98);
}

TEST(Des, UtilisationsAreFractions) {
  const auto r = simulate_dataflow(ms::paper_datasets()[2], {});
  EXPECT_GT(r.encoder_utilisation, 0.0);
  EXPECT_LE(r.encoder_utilisation, 1.0);
  EXPECT_GT(r.cluster_utilisation, 0.0);
  EXPECT_LE(r.cluster_utilisation, 1.0);
}

TEST(Des, Deterministic) {
  const auto a = simulate_dataflow(ms::paper_datasets()[1], {});
  const auto b = simulate_dataflow(ms::paper_datasets()[1], {});
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}

TEST(Des, MoreKernelsHelpOnlyUntilEncoderBound) {
  const auto ds = ms::paper_datasets()[4];
  spechd_hw_config one;
  one.cluster_kernels = 1;
  spechd_hw_config five;
  five.cluster_kernels = 5;
  spechd_hw_config fifty;
  fifty.cluster_kernels = 50;
  const auto r1 = simulate_dataflow(ds, one);
  const auto r5 = simulate_dataflow(ds, five);
  const auto r50 = simulate_dataflow(ds, fifty);
  EXPECT_LE(r5.pipeline_s, r1.pipeline_s);
  EXPECT_LE(r50.pipeline_s, r5.pipeline_s * 1.001);
  // Once encoder-bound, throwing kernels at it saturates.
  EXPECT_GT(r50.pipeline_s, r5.pipeline_s * 0.2);
}

TEST(Des, MakespanIncludesPreprocessing) {
  const auto ds = ms::paper_datasets()[0];
  const auto r = simulate_dataflow(ds, {});
  EXPECT_GT(r.makespan_s, r.pipeline_s);
}

TEST(Des, BucketsReported) {
  const auto r = simulate_dataflow(ms::paper_datasets()[0], {});
  EXPECT_GT(r.buckets, 0U);
}

}  // namespace
}  // namespace spechd::fpga
