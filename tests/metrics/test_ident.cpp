#include "metrics/ident.hpp"

#include <gtest/gtest.h>

#include "ms/synthetic.hpp"

namespace spechd::metrics {
namespace {

std::vector<ms::peptide> sample_targets() {
  return {ms::peptide("ELVISLIVESK"), ms::peptide("ACDEFGHIK"),
          ms::peptide("QWERTYNK"), ms::peptide("SAMPLEPEPTIDER")};
}

TEST(LibrarySearch, DecoysMatchTargetCountAndMass) {
  library_search engine(sample_targets(), {});
  ASSERT_EQ(engine.decoys().size(), engine.targets().size());
  for (std::size_t i = 0; i < engine.targets().size(); ++i) {
    EXPECT_NEAR(engine.decoys()[i].neutral_mass(), engine.targets()[i].neutral_mass(),
                1e-9)
        << "decoys must be isobaric with their targets";
    EXPECT_EQ(engine.decoys()[i].sequence().back(), engine.targets()[i].sequence().back());
  }
}

TEST(LibrarySearch, CleanTheoreticalSpectrumFindsItsPeptide) {
  library_search engine(sample_targets(), {});
  const auto query = ms::theoretical_spectrum(ms::peptide("ELVISLIVESK"), 2);
  const auto match = engine.search_one(query, 0);
  ASSERT_TRUE(match.has_value());
  EXPECT_FALSE(match->decoy);
  EXPECT_EQ(engine.targets()[match->library_index].sequence(), "ELVISLIVESK");
  EXPECT_GT(match->score, 0.9);
  EXPECT_EQ(match->charge, 2);
}

TEST(LibrarySearch, NoisyReplicateStillIdentified) {
  library_search engine(sample_targets(), {});
  ms::synthetic_config noise;
  const auto query = ms::noisy_replicate(ms::peptide("ACDEFGHIK"), 2, noise, 44);
  const auto match = engine.search_one(query, 0);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(engine.targets()[match->library_index].sequence(), "ACDEFGHIK");
}

TEST(LibrarySearch, EmptyQueryIsNullopt) {
  library_search engine(sample_targets(), {});
  ms::spectrum empty;
  EXPECT_FALSE(engine.search_one(empty, 0).has_value());
}

TEST(LibrarySearch, PrecursorWindowExcludesFarCandidates) {
  library_search engine(sample_targets(), {});
  auto query = ms::theoretical_spectrum(ms::peptide("ELVISLIVESK"), 2);
  query.precursor_mz += 50.0;  // push outside the tolerance window
  const auto match = engine.search_one(query, 0);
  // Either no match or a (worse) different candidate; never the true one at
  // full score.
  if (match) {
    EXPECT_LT(match->score, 0.9);
  } else {
    SUCCEED();
  }
}

TEST(LibrarySearch, ChargeMismatchRejected) {
  library_search engine(sample_targets(), {});
  auto query = ms::theoretical_spectrum(ms::peptide("ELVISLIVESK"), 2);
  query.precursor_charge = 3;  // declared charge disagrees with library entry
  const auto match = engine.search_one(query, 0);
  if (match) {
    EXPECT_NE(engine.targets()[match->library_index].sequence(), "ELVISLIVESK");
  }
}

TEST(LibrarySearch, BatchAcceptsHighScoringTargets) {
  library_search engine(sample_targets(), {});
  std::vector<ms::spectrum> queries;
  for (const auto& p : sample_targets()) {
    queries.push_back(ms::theoretical_spectrum(p, 2));
    queries.push_back(ms::theoretical_spectrum(p, 3));
  }
  const auto accepted = engine.search_batch(queries);
  EXPECT_GE(accepted.size(), 6U);  // near-perfect inputs pass FDR easily
  for (const auto& psm : accepted) EXPECT_FALSE(psm.decoy);
}

TEST(LibrarySearch, UniquePeptidesGroupsByCharge) {
  library_search engine(sample_targets(), {});
  std::vector<ms::spectrum> queries = {
      ms::theoretical_spectrum(ms::peptide("ELVISLIVESK"), 2),
      ms::theoretical_spectrum(ms::peptide("ACDEFGHIK"), 3),
  };
  const auto accepted = engine.search_batch(queries);
  const auto charge2 = library_search::unique_peptides(accepted, engine, 2);
  const auto charge3 = library_search::unique_peptides(accepted, engine, 3);
  EXPECT_EQ(charge2.count("ELVISLIVESK"), 1U);
  EXPECT_EQ(charge3.count("ACDEFGHIK"), 1U);
  EXPECT_EQ(charge2.count("ACDEFGHIK"), 0U);
}

TEST(Venn, RegionsComputed) {
  const std::set<std::string> a = {"x", "y", "common"};
  const std::set<std::string> b = {"y", "z", "common"};
  const std::set<std::string> c = {"w", "common"};
  const auto v = venn_overlap(a, b, c);
  EXPECT_EQ(v.abc, 1U);     // common
  EXPECT_EQ(v.ab, 1U);      // y
  EXPECT_EQ(v.only_a, 1U);  // x
  EXPECT_EQ(v.only_b, 1U);  // z
  EXPECT_EQ(v.only_c, 1U);  // w
  EXPECT_EQ(v.ac, 0U);
  EXPECT_EQ(v.bc, 0U);
  EXPECT_EQ(v.total_a(), 3U);
  EXPECT_EQ(v.total_b(), 3U);
  EXPECT_EQ(v.total_c(), 2U);
}

TEST(Venn, EmptySets) {
  const auto v = venn_overlap({}, {}, {});
  EXPECT_EQ(v.total_a() + v.total_b() + v.total_c(), 0U);
}

}  // namespace
}  // namespace spechd::metrics
