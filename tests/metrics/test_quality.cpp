#include "metrics/quality.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace spechd::metrics {
namespace {

cluster::flat_clustering make_clustering(std::vector<std::int32_t> labels) {
  cluster::flat_clustering c;
  std::int32_t max_label = -1;
  for (const auto l : labels) max_label = std::max(max_label, l);
  c.cluster_count = static_cast<std::size_t>(max_label + 1);
  c.labels = std::move(labels);
  return c;
}

TEST(Quality, PerfectClustering) {
  const std::vector<std::int32_t> truth = {0, 0, 0, 1, 1, 2, 2, 2};
  const auto pred = make_clustering({0, 0, 0, 1, 1, 2, 2, 2});
  const auto r = evaluate_clustering(truth, pred);
  EXPECT_DOUBLE_EQ(r.clustered_ratio, 1.0);
  EXPECT_DOUBLE_EQ(r.incorrect_ratio, 0.0);
  EXPECT_NEAR(r.completeness, 1.0, 1e-12);
  EXPECT_NEAR(r.homogeneity, 1.0, 1e-12);
  EXPECT_NEAR(r.v_measure, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.purity, 1.0);
  EXPECT_DOUBLE_EQ(r.pairwise_precision, 1.0);
  EXPECT_DOUBLE_EQ(r.pairwise_recall, 1.0);
}

TEST(Quality, AllSingletonsNothingClustered) {
  const std::vector<std::int32_t> truth = {0, 0, 1, 1};
  const auto pred = make_clustering({0, 1, 2, 3});
  const auto r = evaluate_clustering(truth, pred);
  EXPECT_DOUBLE_EQ(r.clustered_ratio, 0.0);
  EXPECT_DOUBLE_EQ(r.incorrect_ratio, 0.0);  // vacuous: nothing clustered
  EXPECT_EQ(r.cluster_count, 0U);
  EXPECT_DOUBLE_EQ(r.pairwise_recall, 0.0);
  // Singleton clusters are perfectly homogeneous but incomplete.
  EXPECT_NEAR(r.homogeneity, 1.0, 1e-12);
  EXPECT_LT(r.completeness, 1.0);
}

TEST(Quality, EverythingInOneClusterIsComplete) {
  const std::vector<std::int32_t> truth = {0, 0, 1, 1};
  const auto pred = make_clustering({0, 0, 0, 0});
  const auto r = evaluate_clustering(truth, pred);
  EXPECT_DOUBLE_EQ(r.clustered_ratio, 1.0);
  EXPECT_NEAR(r.completeness, 1.0, 1e-12);
  EXPECT_LT(r.homogeneity, 1.0);
  // Majority is 2 of 4 -> half incorrectly clustered.
  EXPECT_DOUBLE_EQ(r.incorrect_ratio, 0.5);
  EXPECT_DOUBLE_EQ(r.purity, 0.5);
}

TEST(Quality, IcrCountsMinorityMembers) {
  // Cluster 0: labels {0,0,1} -> 1 incorrect of 3.
  const std::vector<std::int32_t> truth = {0, 0, 1, 2};
  const auto pred = make_clustering({0, 0, 0, 1});
  const auto r = evaluate_clustering(truth, pred);
  EXPECT_NEAR(r.incorrect_ratio, 1.0 / 3.0, 1e-12);
}

TEST(Quality, UnidentifiedSpectraExcludedFromIcr) {
  // Second member unlabelled: cluster has 2 identified members, same label.
  const std::vector<std::int32_t> truth = {0, -1, 0};
  const auto pred = make_clustering({0, 0, 0});
  const auto r = evaluate_clustering(truth, pred);
  EXPECT_DOUBLE_EQ(r.incorrect_ratio, 0.0);
  // But they count for the clustered ratio.
  EXPECT_DOUBLE_EQ(r.clustered_ratio, 1.0);
}

TEST(Quality, ClusteredRatioCountsNonSingletonsOnly) {
  const std::vector<std::int32_t> truth = {0, 0, 1, 1, 2};
  const auto pred = make_clustering({0, 0, 1, 1, 2});
  const auto r = evaluate_clustering(truth, pred);
  EXPECT_NEAR(r.clustered_ratio, 4.0 / 5.0, 1e-12);
  EXPECT_EQ(r.cluster_count, 2U);
  EXPECT_EQ(r.clustered_spectra, 4U);
}

TEST(Quality, PairwiseMetricsKnownValues) {
  // truth pairs: {0,1} same, {2,3} same -> 2 true pairs.
  // pred: cluster {0,1,2} -> 3 pairs, 1 correct; {3} singleton.
  const std::vector<std::int32_t> truth = {0, 0, 1, 1};
  const auto pred = make_clustering({0, 0, 0, 1});
  const auto r = evaluate_clustering(truth, pred);
  EXPECT_NEAR(r.pairwise_precision, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.pairwise_recall, 1.0 / 2.0, 1e-12);
}

TEST(Quality, EmptyInput) {
  const auto r = evaluate_clustering({}, make_clustering({}));
  EXPECT_DOUBLE_EQ(r.clustered_ratio, 0.0);
}

TEST(Quality, SizeMismatchThrows) {
  EXPECT_THROW(evaluate_clustering({0, 1}, make_clustering({0})), logic_error);
}

TEST(Quality, SingleClassSplitIsIncompleteButHomogeneous) {
  // One true class split over two clusters: every cluster is pure
  // (homogeneity 1) but the class is torn apart (completeness 0) — the
  // sklearn-compatible convention.
  const std::vector<std::int32_t> truth = {0, 0, 0};
  const auto pred = make_clustering({0, 1, 1});
  const auto r = evaluate_clustering(truth, pred);
  EXPECT_DOUBLE_EQ(r.homogeneity, 1.0);
  EXPECT_DOUBLE_EQ(r.completeness, 0.0);
}

TEST(Quality, SingleClusterCompletenessIsOne) {
  // Everything in one cluster: H(cluster) = 0 -> completeness defined as 1.
  const std::vector<std::int32_t> truth = {0, 0, 1};
  const auto pred = make_clustering({0, 0, 0});
  const auto r = evaluate_clustering(truth, pred);
  EXPECT_DOUBLE_EQ(r.completeness, 1.0);
}

TEST(Quality, NoiseOnlyTruthGivesVacuousMetrics) {
  const std::vector<std::int32_t> truth = {-1, -1, -1};
  const auto pred = make_clustering({0, 0, 0});
  const auto r = evaluate_clustering(truth, pred);
  EXPECT_DOUBLE_EQ(r.incorrect_ratio, 0.0);
  EXPECT_DOUBLE_EQ(r.purity, 1.0);
}

}  // namespace
}  // namespace spechd::metrics
