#include "metrics/agreement.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace spechd::metrics {
namespace {

cluster::flat_clustering clustering(std::vector<std::int32_t> labels) {
  cluster::flat_clustering c;
  std::int32_t max_label = -1;
  for (const auto l : labels) max_label = std::max(max_label, l);
  c.cluster_count = static_cast<std::size_t>(max_label + 1);
  c.labels = std::move(labels);
  return c;
}

TEST(Ari, PerfectMatchIsOne) {
  const std::vector<std::int32_t> truth = {0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(truth, clustering({1, 1, 0, 0, 2, 2})), 1.0);
}

TEST(Ari, LabelPermutationInvariant) {
  const std::vector<std::int32_t> truth = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(truth, clustering({0, 0, 1, 1})),
                   adjusted_rand_index(truth, clustering({1, 1, 0, 0})));
}

TEST(Ari, RandomAssignmentNearZero) {
  // Alternating truth vs block clustering: known small ARI.
  const std::vector<std::int32_t> truth = {0, 1, 0, 1, 0, 1, 0, 1};
  const double ari = adjusted_rand_index(truth, clustering({0, 0, 0, 0, 1, 1, 1, 1}));
  EXPECT_LT(std::abs(ari), 0.35);
}

TEST(Ari, WorseThanChanceIsNegative) {
  // Perfect anti-correlation on 4 items: splits every true pair.
  const std::vector<std::int32_t> truth = {0, 0, 1, 1};
  const double ari = adjusted_rand_index(truth, clustering({0, 1, 0, 1}));
  EXPECT_LT(ari, 0.0);
}

TEST(Ari, NoiseLabelsExcluded) {
  const std::vector<std::int32_t> truth = {0, 0, 1, 1, -1};
  const auto with_noise = clustering({0, 0, 1, 1, 2});
  EXPECT_DOUBLE_EQ(adjusted_rand_index(truth, with_noise), 1.0);
}

TEST(Ari, TinyInputsDefined) {
  EXPECT_DOUBLE_EQ(adjusted_rand_index({0}, clustering({0})), 1.0);
  EXPECT_DOUBLE_EQ(adjusted_rand_index({}, clustering({})), 1.0);
}

TEST(Nmi, PerfectMatchIsOne) {
  const std::vector<std::int32_t> truth = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(normalized_mutual_information(truth, clustering({2, 2, 0, 0, 1, 1})), 1.0,
              1e-12);
}

TEST(Nmi, IndependentPartitionsNearZero) {
  const std::vector<std::int32_t> truth = {0, 1, 0, 1, 0, 1, 0, 1};
  const double nmi =
      normalized_mutual_information(truth, clustering({0, 0, 0, 0, 1, 1, 1, 1}));
  EXPECT_LT(nmi, 0.1);
}

TEST(Nmi, BoundedZeroOne) {
  const std::vector<std::int32_t> truth = {0, 0, 1, 2, 2, 1};
  const double nmi =
      normalized_mutual_information(truth, clustering({0, 1, 1, 0, 2, 2}));
  EXPECT_GE(nmi, 0.0);
  EXPECT_LE(nmi, 1.0);
}

TEST(Nmi, TrivialPartitionsDefined) {
  const std::vector<std::int32_t> truth = {0, 0, 0};
  EXPECT_DOUBLE_EQ(normalized_mutual_information(truth, clustering({0, 0, 0})), 1.0);
}

TEST(Agreement, SizeMismatchThrows) {
  EXPECT_THROW(adjusted_rand_index({0, 1}, clustering({0})), logic_error);
  EXPECT_THROW(normalized_mutual_information({0, 1}, clustering({0})), logic_error);
}

TEST(Agreement, SplitClusterScoresBelowPerfect) {
  const std::vector<std::int32_t> truth = {0, 0, 0, 0, 1, 1, 1, 1};
  const auto split = clustering({0, 0, 1, 1, 2, 2, 3, 3});
  EXPECT_LT(adjusted_rand_index(truth, split), 1.0);
  EXPECT_GT(adjusted_rand_index(truth, split), 0.0);
  EXPECT_LT(normalized_mutual_information(truth, split), 1.0);
  EXPECT_GT(normalized_mutual_information(truth, split), 0.5);
}

}  // namespace
}  // namespace spechd::metrics
