// Bounded MPSC queue: ordering, backpressure, close/drain semantics, and
// multi-producer stress (every pushed item is popped exactly once).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "util/mpsc_queue.hpp"

namespace spechd {
namespace {

TEST(MpscQueue, FifoSingleThread) {
  mpsc_queue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.size(), 3U);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpscQueue, TryPushRespectsCapacity) {
  mpsc_queue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(MpscQueue, PushBlocksUntilSpace) {
  mpsc_queue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(2));  // blocks until the consumer pops
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(MpscQueue, CloseDrainsThenEndsPop) {
  mpsc_queue<int> q(8);
  ASSERT_TRUE(q.push(7));
  ASSERT_TRUE(q.push(8));
  q.close();
  EXPECT_FALSE(q.push(9));  // rejected after close
  EXPECT_EQ(q.pop().value(), 7);  // backlog still drains
  EXPECT_EQ(q.pop().value(), 8);
  EXPECT_FALSE(q.pop().has_value());  // closed + empty
  EXPECT_TRUE(q.closed());
}

TEST(MpscQueue, CloseWakesBlockedProducer) {
  mpsc_queue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread producer([&] { EXPECT_FALSE(q.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
}

TEST(MpscQueue, CloseWakesAndRejectsEveryBlockedProducer) {
  // Shard shutdown mid-ingest: every producer parked on a full queue must
  // wake and see the rejection (none may stay blocked, none may slip an
  // item in past the close).
  mpsc_queue<int> q(1);
  ASSERT_TRUE(q.push(0));
  constexpr int producers = 4;
  std::atomic<int> rejected{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&] {
      if (!q.push(1)) ++rejected;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  for (auto& t : threads) t.join();
  EXPECT_EQ(rejected.load(), producers);
  EXPECT_EQ(q.pop().value(), 0);  // the pre-close backlog still drains
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpscQueue, MultiProducerEveryItemPoppedOnce) {
  constexpr int producers = 4;
  constexpr int per_producer = 500;
  mpsc_queue<int> q(8);  // small capacity so backpressure is exercised

  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < per_producer; ++i) {
        ASSERT_TRUE(q.push(p * per_producer + i));
      }
    });
  }

  std::vector<int> seen;
  seen.reserve(producers * per_producer);
  std::thread consumer([&] {
    while (auto item = q.pop()) seen.push_back(*item);
  });

  for (auto& t : threads) t.join();
  q.close();
  consumer.join();

  ASSERT_EQ(seen.size(), static_cast<std::size_t>(producers * per_producer));
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < producers * per_producer; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);

  // Per-producer FIFO: items from one producer appear in push order. (The
  // sort above destroyed order, so recheck with a fresh run.)
}

TEST(MpscQueue, PerProducerOrderPreserved) {
  mpsc_queue<std::pair<int, int>> q(4);
  std::thread a([&] {
    for (int i = 0; i < 200; ++i) ASSERT_TRUE(q.push({0, i}));
  });
  std::thread b([&] {
    for (int i = 0; i < 200; ++i) ASSERT_TRUE(q.push({1, i}));
  });
  std::vector<int> next(2, 0);
  std::thread consumer([&] {
    while (auto item = q.pop()) {
      EXPECT_EQ(item->second, next[static_cast<std::size_t>(item->first)]++);
    }
  });
  a.join();
  b.join();
  q.close();
  consumer.join();
  EXPECT_EQ(next[0], 200);
  EXPECT_EQ(next[1], 200);
}

TEST(MpscQueue, MoveOnlyPayload) {
  mpsc_queue<std::unique_ptr<int>> q(2);
  ASSERT_TRUE(q.push(std::make_unique<int>(42)));
  auto out = q.pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, 42);
}

}  // namespace
}  // namespace spechd
