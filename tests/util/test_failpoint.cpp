// Failpoint registry + checked-I/O layer: spec parsing, trigger semantics,
// deterministic probabilistic firing, and the write/retry behaviour of
// util/io under injected faults.
//
// The registry is process-global, so every test disarms everything it armed
// (the fixture reset()s in both directions) — the serve-tier tests in this
// binary run with all failpoints disarmed unless they arm their own.
#include "util/failpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/io.hpp"

namespace util = spechd::util;

namespace {

class FailpointTest : public ::testing::Test {
protected:
  void SetUp() override { util::registry().reset(); }
  void TearDown() override { util::registry().reset(); }
};

/// A scratch file in the test's temp dir; removed on destruction.
struct temp_file {
  std::string path;
  temp_file() {
    path = ::testing::TempDir() + "spechd_failpoint_XXXXXX";
    int fd = ::mkstemp(path.data());
    EXPECT_GE(fd, 0);
    if (fd >= 0) ::close(fd);
  }
  ~temp_file() { std::remove(path.c_str()); }
  std::string contents() const {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }
};

}  // namespace

TEST_F(FailpointTest, DisarmedSiteNeverFires) {
  util::failpoint fp("test.disarmed");
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(fp.fire().has_value());
  const auto stats = util::registry().stats("test.disarmed");
  EXPECT_EQ(stats.hits, 0u);  // disarmed hits are not even counted
  EXPECT_EQ(stats.fires, 0u);
}

TEST_F(FailpointTest, ArmErrorFiresEveryHit) {
  util::failpoint fp("test.always");
  util::failpoint_spec spec;
  spec.action.type = util::failpoint_action::kind::error;
  spec.action.error_code = ENOSPC;
  util::registry().arm("test.always", spec);
  for (int i = 0; i < 5; ++i) {
    auto action = fp.fire();
    ASSERT_TRUE(action.has_value());
    EXPECT_EQ(action->type, util::failpoint_action::kind::error);
    EXPECT_EQ(action->error_code, ENOSPC);
  }
  const auto stats = util::registry().stats("test.always");
  EXPECT_EQ(stats.hits, 5u);
  EXPECT_EQ(stats.fires, 5u);
}

TEST_F(FailpointTest, AfterAndTimesTriggers) {
  util::failpoint fp("test.window");
  // Skip the first 2 hits, then fire at most 3 times.
  util::registry().arm_from_spec("test.window=error:EIO@after2,times3");
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (fp.fire()) ++fired;
  }
  EXPECT_EQ(fired, 3);
  const auto stats = util::registry().stats("test.window");
  EXPECT_EQ(stats.hits, 10u);
  EXPECT_EQ(stats.fires, 3u);
}

TEST_F(FailpointTest, RearmResetsFireBudgetNotHits) {
  util::failpoint fp("test.rearm");
  util::registry().arm_from_spec("test.rearm=error@times1");
  EXPECT_TRUE(fp.fire().has_value());
  EXPECT_FALSE(fp.fire().has_value());  // budget spent
  util::registry().arm_from_spec("test.rearm=error@times1");
  EXPECT_TRUE(fp.fire().has_value());  // fresh budget
  const auto stats = util::registry().stats("test.rearm");
  EXPECT_EQ(stats.hits, 3u);  // hits kept counting across the re-arm
  EXPECT_EQ(stats.fires, 1u);  // per-arming budget (arm zeroes fires)
}

TEST_F(FailpointTest, ProbabilisticFiringIsDeterministicInSeed) {
  util::failpoint fp("test.prob");
  auto run = [&](std::uint64_t seed) {
    util::registry().reset();
    util::registry().seed(seed);
    util::registry().arm_from_spec("test.prob=error@p0.5");
    std::string pattern;
    for (int i = 0; i < 64; ++i) pattern += fp.fire() ? '1' : '0';
    return pattern;
  };
  const auto a1 = run(42);
  const auto a2 = run(42);
  const auto b = run(43);
  EXPECT_EQ(a1, a2);  // same seed, same hit order -> identical decisions
  EXPECT_NE(a1, b);   // different seed actually changes them
  // p0.5 over 64 hits: both outcomes must occur (the hash is not stuck).
  EXPECT_NE(a1.find('0'), std::string::npos);
  EXPECT_NE(a1.find('1'), std::string::npos);
}

TEST_F(FailpointTest, DelayActionSleepsThenReturnsNullopt) {
  util::failpoint fp("test.delay");
  util::registry().arm_from_spec("test.delay=delay:1@times2");
  // A firing delay sleeps inside fire() and reports nothing to inject, so
  // call sites run the real call afterwards.
  EXPECT_FALSE(fp.fire().has_value());
  EXPECT_FALSE(fp.fire().has_value());
  const auto stats = util::registry().stats("test.delay");
  EXPECT_EQ(stats.fires, 2u);  // still counted as injections
}

TEST_F(FailpointTest, SpecParsingErrors) {
  EXPECT_THROW(util::registry().arm_from_spec("noequals"), spechd::error);
  EXPECT_THROW(util::registry().arm_from_spec("=error"), spechd::error);
  EXPECT_THROW(util::registry().arm_from_spec("x=explode"), spechd::error);
  EXPECT_THROW(util::registry().arm_from_spec("x=error:EWHAT"), spechd::error);
  EXPECT_THROW(util::registry().arm_from_spec("x=error@p1.5"), spechd::error);
  EXPECT_THROW(util::registry().arm_from_spec("x=error@times0"), spechd::error);
  EXPECT_THROW(util::registry().arm_from_spec("x=error@sometimes"), spechd::error);
  EXPECT_THROW(util::registry().arm_from_spec("x=delay:-3"), spechd::error);
}

TEST_F(FailpointTest, MultiEntrySpecArmsAllSites) {
  util::registry().arm_from_spec(
      "test.multi.a=error:ENOSPC@times1;test.multi.b=delay:5@p0.25");
  EXPECT_TRUE(util::registry().known("test.multi.a"));
  EXPECT_TRUE(util::registry().known("test.multi.b"));
  // Arming before the site registers is allowed: the spec waits for it.
  util::failpoint fp("test.multi.a");
  auto action = fp.fire();
  ASSERT_TRUE(action.has_value());
  EXPECT_EQ(action->error_code, ENOSPC);
}

TEST_F(FailpointTest, NamesListsRegisteredSites) {
  util::failpoint fp("test.names.site");
  const auto names = util::registry().names();
  bool found = false;
  for (const auto& n : names) {
    if (n == "test.names.site") found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(util::registry().known("test.names.site"));
  EXPECT_FALSE(util::registry().known("test.names.never-registered"));
}

// ---- checked I/O under injection -----------------------------------------

TEST_F(FailpointTest, WriteAllCompletesAcrossInjectedShortWrites) {
  temp_file file;
  int fd = ::open(file.path.c_str(), O_WRONLY | O_TRUNC);
  ASSERT_GE(fd, 0);
  util::failpoint fp("test.io.short");
  // Every transfer is cut short until the budget runs out; the loop must
  // keep re-entering and still deliver every byte in order.
  util::registry().arm_from_spec("test.io.short=short@times4");
  std::string payload;
  for (int i = 0; i < 4096; ++i) payload += static_cast<char>('a' + i % 26);
  util::write_all(fd, payload.data(), payload.size(), file.path, fp);
  ::close(fd);
  EXPECT_EQ(file.contents(), payload);
  EXPECT_EQ(util::registry().stats("test.io.short").fires, 4u);
}

TEST_F(FailpointTest, WriteAllReportsBytesCompletedOnInjectedError) {
  temp_file file;
  int fd = ::open(file.path.c_str(), O_WRONLY | O_TRUNC);
  ASSERT_GE(fd, 0);
  util::failpoint fp("test.io.enospc");
  // First transfer is cut short (bytes land), second fails hard: the
  // exception must say how far the write got so callers can roll back.
  util::registry().arm_from_spec("test.io.enospc=short@times1");
  const std::string payload(1024, 'x');
  bool threw = false;
  try {
    util::write_all(fd, payload.data(), payload.size(), file.path, fp);
    // First call succeeds (short write just loops); now inject a hard error.
    util::registry().arm_from_spec("test.io.enospc=error:ENOSPC");
    util::write_all(fd, payload.data(), payload.size(), file.path, fp);
  } catch (const util::io_failure& e) {
    threw = true;
    EXPECT_EQ(e.op(), util::io_op::write);
    EXPECT_EQ(e.code(), ENOSPC);
    EXPECT_EQ(e.path(), file.path);
    EXPECT_EQ(e.bytes_completed(), 0u);  // error injected before any transfer
  }
  ASSERT_TRUE(threw);
  ::close(fd);
  EXPECT_EQ(file.contents(), payload);  // the first (short-write) call completed
}

TEST_F(FailpointTest, WriteAllRestartsOnInjectedEintr) {
  temp_file file;
  int fd = ::open(file.path.c_str(), O_WRONLY | O_TRUNC);
  ASSERT_GE(fd, 0);
  util::failpoint fp("test.io.eintr");
  util::registry().arm_from_spec("test.io.eintr=error:EINTR@times3");
  const std::string payload(256, 'q');
  // EINTR restarts immediately and is not a failure or a counted retry.
  util::write_all(fd, payload.data(), payload.size(), file.path, fp);
  ::close(fd);
  EXPECT_EQ(file.contents(), payload);
}

TEST_F(FailpointTest, WriteAllRetriesTransientErrorsWithBackoff) {
  temp_file file;
  int fd = ::open(file.path.c_str(), O_WRONLY | O_TRUNC);
  ASSERT_GE(fd, 0);
  util::failpoint fp("test.io.eagain");
  // Two transient failures fit inside the default 4-retry budget.
  util::registry().arm_from_spec("test.io.eagain=error:EAGAIN@times2");
  const std::string payload(128, 'r');
  util::write_all(fd, payload.data(), payload.size(), file.path, fp);
  ::close(fd);
  EXPECT_EQ(file.contents(), payload);
}

TEST_F(FailpointTest, WriteAllGivesUpWhenTransientErrorsExceedBudget) {
  temp_file file;
  int fd = ::open(file.path.c_str(), O_WRONLY | O_TRUNC);
  ASSERT_GE(fd, 0);
  util::failpoint fp("test.io.eagain-forever");
  util::registry().arm_from_spec("test.io.eagain-forever=error:EAGAIN");
  const std::string payload(64, 's');
  util::io_retry_policy fast;
  fast.max_retries = 2;
  fast.initial_backoff = std::chrono::milliseconds(0);
  try {
    util::write_all(fd, payload.data(), payload.size(), file.path, fp, fast);
    FAIL() << "expected io_failure";
  } catch (const util::io_failure& e) {
    EXPECT_EQ(e.code(), EAGAIN);
  }
  ::close(fd);
}

TEST_F(FailpointTest, OpenFdInjectedErrorThrowsTyped) {
  temp_file file;
  util::failpoint fp("test.io.open");
  util::registry().arm_from_spec("test.io.open=error:EACCES@times1");
  try {
    util::open_fd(file.path, O_RDONLY, 0, fp);
    FAIL() << "expected io_failure";
  } catch (const util::io_failure& e) {
    EXPECT_EQ(e.op(), util::io_op::open);
    EXPECT_EQ(e.code(), EACCES);
    EXPECT_EQ(e.path(), file.path);
  }
  // Budget spent: the next open succeeds.
  int fd = util::open_fd(file.path, O_RDONLY, 0, fp);
  EXPECT_GE(fd, 0);
  ::close(fd);
}

TEST_F(FailpointTest, RemoveFileIdempotentOnMissing) {
  util::failpoint fp("test.io.remove");
  const std::string missing = ::testing::TempDir() + "spechd_never_existed";
  EXPECT_NO_THROW(util::remove_file(missing, fp));
}

TEST_F(FailpointTest, RenameAndFsyncInjection) {
  temp_file src;
  {
    std::ofstream out(src.path, std::ios::binary);
    out << "payload";
  }
  const std::string dst = src.path + ".renamed";
  util::failpoint fp_rename("test.io.rename");
  util::failpoint fp_fsync("test.io.fsync");
  util::registry().arm_from_spec("test.io.rename=error:EIO@times1");
  EXPECT_THROW(util::rename_file(src.path, dst, fp_rename), util::io_failure);
  // Injection consumed: the real rename goes through.
  util::rename_file(src.path, dst, fp_rename);
  int fd = ::open(dst.c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);
  util::registry().arm_from_spec("test.io.fsync=error:EIO@times1");
  EXPECT_THROW(util::fsync_fd(fd, dst, fp_fsync), util::io_failure);
  EXPECT_NO_THROW(util::fsync_fd(fd, dst, fp_fsync));
  ::close(fd);
  std::remove(dst.c_str());
}
