// Leveled logging (src/util/log.*): the global threshold must drop
// records below it and pass records at or above it, emitted lines must
// carry the `[spechd:LEVEL] message` shape with the right level name,
// streaming into one record must compose a single line, and concurrent
// emitters must never interleave within a line (each captured line is one
// complete record). Tests capture std::cerr by swapping its rdbuf; the
// global level is restored to the library default (warn) on every exit
// path so later suites keep their quiet output.
#include <gtest/gtest.h>

#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/log.hpp"

namespace spechd {
namespace {

// RAII: capture everything written to std::cerr, restore on destruction.
class cerr_capture {
public:
  cerr_capture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~cerr_capture() { std::cerr.rdbuf(old_); }
  std::string str() const { return buffer_.str(); }

private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

// RAII: set the threshold for one test, restore the library default.
class level_guard {
public:
  explicit level_guard(log_level level) { set_log_level(level); }
  ~level_guard() { set_log_level(log_level::warn); }
};

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

TEST(Log, DefaultLevelIsWarn) {
  EXPECT_EQ(get_log_level(), log_level::warn);
}

TEST(Log, ThresholdDropsRecordsBelowIt) {
  level_guard level(log_level::warn);
  cerr_capture captured;
  log_debug() << "dropped-debug";
  log_info() << "dropped-info";
  log_warn() << "kept-warn";
  log_error() << "kept-error";
  const auto lines = lines_of(captured.str());
  ASSERT_EQ(lines.size(), 2u) << captured.str();
  EXPECT_EQ(lines[0], "[spechd:WARN] kept-warn");
  EXPECT_EQ(lines[1], "[spechd:ERROR] kept-error");
}

TEST(Log, DebugLevelPassesEverything) {
  level_guard level(log_level::debug);
  cerr_capture captured;
  log_debug() << "d";
  log_info() << "i";
  log_warn() << "w";
  log_error() << "e";
  const auto lines = lines_of(captured.str());
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "[spechd:DEBUG] d");
  EXPECT_EQ(lines[1], "[spechd:INFO] i");
  EXPECT_EQ(lines[2], "[spechd:WARN] w");
  EXPECT_EQ(lines[3], "[spechd:ERROR] e");
}

TEST(Log, OffSilencesEverything) {
  level_guard level(log_level::off);
  cerr_capture captured;
  log_debug() << "x";
  log_info() << "x";
  log_warn() << "x";
  log_error() << "x";
  EXPECT_TRUE(captured.str().empty()) << captured.str();
}

TEST(Log, SetAndGetRoundTrip) {
  level_guard level(log_level::info);
  EXPECT_EQ(get_log_level(), log_level::info);
  set_log_level(log_level::err);
  EXPECT_EQ(get_log_level(), log_level::err);
}

TEST(Log, RecordStreamsComposeOneLine) {
  level_guard level(log_level::info);
  cerr_capture captured;
  log_info() << "shard " << 3 << " replayed " << 1024 << " records ("
             << 2.5 << " s)";
  const auto lines = lines_of(captured.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "[spechd:INFO] shard 3 replayed 1024 records (2.5 s)");
}

TEST(Log, RecordEmitsOnDestructionNotConstruction) {
  level_guard level(log_level::info);
  cerr_capture captured;
  {
    auto record = log_info();
    record << "first half";
    EXPECT_TRUE(captured.str().empty()) << "emitted before the record closed";
    record << " second half";
  }
  const auto lines = lines_of(captured.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "[spechd:INFO] first half second half");
}

TEST(Log, ConcurrentEmittersNeverInterleaveWithinALine) {
  level_guard level(log_level::info);
  cerr_capture captured;
  constexpr int k_threads = 8;
  constexpr int k_lines = 200;
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < k_threads; ++t) {
      threads.emplace_back([t] {
        for (int i = 0; i < k_lines; ++i) {
          log_info() << "thread-" << t << "-line-" << i << "-"
                     << std::string(32, 'a' + static_cast<char>(t));
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  const auto lines = lines_of(captured.str());
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(k_threads * k_lines));
  for (const auto& line : lines) {
    // Every line is exactly one complete record: prefix, one thread's
    // payload, the homogeneous tail that would betray a torn write.
    ASSERT_EQ(line.rfind("[spechd:INFO] thread-", 0), 0u) << line;
    const char tail_char = line.back();
    const auto tail_start = line.find_last_of('-') + 1;
    const std::string tail = line.substr(tail_start);
    EXPECT_EQ(tail, std::string(32, tail_char)) << line;
    EXPECT_EQ(std::count(line.begin(), line.end(), '['), 1) << line;
  }
}

}  // namespace
}  // namespace spechd
