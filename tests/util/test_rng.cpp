#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace spechd {
namespace {

TEST(Splitmix64, DeterministicSequence) {
  splitmix64 a(1234);
  splitmix64 b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Splitmix64, DifferentSeedsDiffer) {
  splitmix64 a(1);
  splitmix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, DeterministicForSeed) {
  xoshiro256ss a(42);
  xoshiro256ss b(42);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(Xoshiro, UniformInUnitInterval) {
  xoshiro256ss rng(7);
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro, UniformRangeRespectsBounds) {
  xoshiro256ss rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(10.0, 20.0);
    ASSERT_GE(v, 10.0);
    ASSERT_LT(v, 20.0);
  }
}

TEST(Xoshiro, BoundedCoversAllResidues) {
  xoshiro256ss rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(7));
  EXPECT_EQ(seen.size(), 7U);
  for (const auto v : seen) EXPECT_LT(v, 7U);
}

TEST(Xoshiro, BoundedOneAlwaysZero) {
  xoshiro256ss rng(10);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0U);
}

TEST(Xoshiro, BernoulliFrequencyMatchesP) {
  xoshiro256ss rng(11);
  int hits = 0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Xoshiro, NormalMomentsApproximatelyStandard) {
  xoshiro256ss rng(12);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Xoshiro, NormalScaling) {
  xoshiro256ss rng(13);
  double sum = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<xoshiro256ss>);
  SUCCEED();
}

}  // namespace
}  // namespace spechd
