#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace spechd {
namespace {

TEST(TextTable, PrintsHeaderAndRowsAligned) {
  text_table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  // Header separator line exists.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, RowWidthMustMatchHeader) {
  text_table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), logic_error);
}

TEST(TextTable, NumFormatsFixedPrecision) {
  EXPECT_EQ(text_table::num(3.14159, 2), "3.14");
  EXPECT_EQ(text_table::num(std::size_t{42}), "42");
  EXPECT_EQ(text_table::num(1.0, 0), "1");
}

TEST(TextTable, CsvEscapesSeparatorsAndQuotes) {
  text_table t;
  t.set_header({"x", "y"});
  t.add_row({"a,b", "say \"hi\""});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
  EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, CsvPlainFieldsUnquoted) {
  text_table t;
  t.set_header({"x"});
  t.add_row({"plain"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x\nplain\n");
}

TEST(TextTable, RowsCountsDataRowsOnly) {
  text_table t;
  t.set_header({"x"});
  EXPECT_EQ(t.rows(), 0U);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2U);
}

}  // namespace
}  // namespace spechd
