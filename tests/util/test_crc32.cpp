// CRC-32 against the standard check vectors, chaining, and sensitivity.
#include <gtest/gtest.h>

#include <string>

#include "util/crc32.hpp"

namespace spechd {
namespace {

TEST(Crc32, KnownVectors) {
  // The canonical IEEE CRC-32 check value.
  const std::string check = "123456789";
  EXPECT_EQ(crc32(check.data(), check.size()), 0xCBF43926U);

  EXPECT_EQ(crc32("", 0), 0U);

  const std::string abc = "abc";
  EXPECT_EQ(crc32(abc.data(), abc.size()), 0x352441C2U);
}

TEST(Crc32, ChainingMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const auto whole = crc32(data.data(), data.size());
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const auto first = crc32(data.data(), split);
    const auto chained = crc32(data.data() + split, data.size() - split, first);
    EXPECT_EQ(chained, whole) << "split at " << split;
  }
}

TEST(Crc32, SingleBitFlipChangesChecksum) {
  std::string data(256, '\0');
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i);
  const auto base = crc32(data.data(), data.size());
  for (std::size_t byte : {std::size_t{0}, data.size() / 2, data.size() - 1}) {
    std::string mutated = data;
    mutated[byte] = static_cast<char>(mutated[byte] ^ 0x10);
    EXPECT_NE(crc32(mutated.data(), mutated.size()), base) << "byte " << byte;
  }
}

}  // namespace
}  // namespace spechd
