#include "util/fixed_point.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace spechd {
namespace {

TEST(Q16, ZeroAndMax) {
  EXPECT_DOUBLE_EQ(q16::zero().to_double(), 0.0);
  EXPECT_EQ(q16::max().raw(), 0xFFFF);
  EXPECT_NEAR(q16::max().to_double(), 1.0, q16::epsilon());
}

TEST(Q16, FromDoubleSaturatesBelowZero) {
  EXPECT_EQ(q16::from_double(-0.5), q16::zero());
}

TEST(Q16, FromDoubleSaturatesAboveOne) {
  EXPECT_EQ(q16::from_double(1.5), q16::max());
  EXPECT_EQ(q16::from_double(1.0), q16::max());
}

TEST(Q16, FromDoubleSaturatesJustBelowOne) {
  // v < 1.0 whose scaled round-half-up lands on 65536 must saturate, not
  // overflow the uint16 conversion (was UB before the scaled-value check).
  EXPECT_EQ(q16::from_double(65535.5 / 65536.0), q16::max());
  EXPECT_EQ(q16::from_double(std::nextafter(1.0, 0.0)), q16::max());
  // Values that land on the top grid step without rounding up to 65536.
  EXPECT_EQ(q16::from_double(65535.0 / 65536.0).raw(), 0xFFFF);
  EXPECT_EQ(q16::from_double(65534.75 / 65536.0).raw(), 0xFFFF);
}

TEST(Q16, FromRatioExactHalf) {
  const auto h = q16::from_ratio(1024, 2048);
  EXPECT_DOUBLE_EQ(h.to_double(), 0.5);
}

TEST(Q16, FromRatioFullSaturates) {
  EXPECT_EQ(q16::from_ratio(2048, 2048), q16::max());
  EXPECT_EQ(q16::from_ratio(5, 0), q16::max());
}

TEST(Q16, OrderingMatchesDouble) {
  const auto a = q16::from_double(0.25);
  const auto b = q16::from_double(0.75);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, q16::from_double(0.25));
}

TEST(Q16, SaturatingAdd) {
  const auto a = q16::from_double(0.75);
  const auto b = q16::from_double(0.5);
  EXPECT_EQ(a + b, q16::max());
  EXPECT_NEAR((q16::from_double(0.25) + q16::from_double(0.5)).to_double(), 0.75,
              2 * q16::epsilon());
}

TEST(Q16, SaturatingSubFloorsAtZero) {
  const auto a = q16::from_double(0.25);
  const auto b = q16::from_double(0.5);
  EXPECT_EQ(a - b, q16::zero());
  EXPECT_NEAR((b - a).to_double(), 0.25, 2 * q16::epsilon());
}

TEST(Q16, MultiplyRounds) {
  const auto half = q16::from_double(0.5);
  EXPECT_NEAR((half * half).to_double(), 0.25, 2 * q16::epsilon());
  EXPECT_EQ((q16::zero() * half), q16::zero());
}

TEST(Q16, MidpointExact) {
  const auto lo = q16::from_double(0.2);
  const auto hi = q16::from_double(0.4);
  EXPECT_NEAR(midpoint(lo, hi).to_double(), 0.3, 2 * q16::epsilon());
  EXPECT_EQ(midpoint(lo, lo), lo);
}

// Property sweep: |from_double(v).to_double() - v| <= epsilon over a grid.
class Q16RoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(Q16RoundTrip, ErrorWithinEpsilon) {
  const double v = GetParam();
  const auto q = q16::from_double(v);
  EXPECT_LE(std::abs(q.to_double() - v), q16::epsilon());
}

INSTANTIATE_TEST_SUITE_P(Grid, Q16RoundTrip,
                         ::testing::Values(0.0, 1e-6, 0.1, 0.123456, 0.25, 0.333333, 0.5,
                                           0.654321, 0.75, 0.9, 0.999, 0.999984));

// Property: from_ratio is exact to within half an lsb for Hamming ratios.
class Q16Ratio : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Q16Ratio, RatioQuantisationBound) {
  const std::uint64_t num = GetParam();
  constexpr std::uint64_t den = 2048;  // D_hv
  const auto q = q16::from_ratio(num, den);
  const double expect = static_cast<double>(num) / den;
  if (num >= den) {
    EXPECT_EQ(q, q16::max());
  } else {
    EXPECT_LE(std::abs(q.to_double() - expect), 0.5 / 65536.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(HammingCounts, Q16Ratio,
                         ::testing::Values(0U, 1U, 7U, 64U, 511U, 1024U, 1536U, 2047U,
                                           2048U));

}  // namespace
}  // namespace spechd
