// Arena-pool behaviour: checkout/return reuse, best-fit selection,
// high-water trimming, stats accounting, and concurrent checkout safety —
// the properties the kernel call sites (NN-chain scratch, packed-tile
// blobs, incremental assignment rows) rely on.
#include "util/arena_pool.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace spechd {
namespace {

TEST(ArenaPool, CheckoutDeliversAlignedWritableScratch) {
  arena_pool pool;
  auto lease = pool.checkout(1000);
  ASSERT_TRUE(lease);
  ASSERT_GE(lease.capacity(), 1000U);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(lease.data()) % arena::alignment, 0U);
  std::memset(lease.data(), 0xAB, 1000);
  EXPECT_EQ(static_cast<unsigned char>(lease.data()[999]), 0xABU);
}

TEST(ArenaPool, ReturnedArenaIsReused) {
  arena_pool pool;
  std::byte* first = nullptr;
  {
    auto lease = pool.checkout(4096);
    first = lease.data();
  }
  auto lease = pool.checkout(4096);
  EXPECT_EQ(lease.data(), first);  // same allocation handed back
  const auto s = pool.stats();
  EXPECT_EQ(s.checkouts, 2U);
  EXPECT_EQ(s.reuses, 1U);
  EXPECT_EQ(s.allocations, 1U);
}

TEST(ArenaPool, BestFitPrefersSmallestAdequateArena) {
  arena_pool pool;
  {
    auto small = pool.checkout(1024);
    auto large = pool.checkout(1 << 20);
  }  // both returned; free list holds 1 KiB and 1 MiB
  auto lease = pool.checkout(512);
  EXPECT_EQ(lease.capacity(), 1024U);  // not the 1 MiB arena
  const auto s = pool.stats();
  EXPECT_EQ(s.reuses, 1U);
}

TEST(ArenaPool, RegrowsLargestFreeArenaWhenNothingFits) {
  arena_pool pool;
  { auto lease = pool.checkout(1024); }
  auto lease = pool.checkout(8192);  // free 1 KiB arena can't serve this
  EXPECT_GE(lease.capacity(), 8192U);
  const auto s = pool.stats();
  EXPECT_EQ(s.allocations, 2U);  // the 1 KiB arena was consumed and regrown
  EXPECT_EQ(s.reuses, 0U);
  EXPECT_EQ(s.retained_bytes, 0U);  // no stale small arena left behind
}

TEST(ArenaPool, HighWaterTrimmingReleasesBeyondRetainLimit) {
  arena_pool pool(/*retain_limit=*/4096);
  { auto big = pool.checkout(1 << 20); }  // returned: exceeds the budget
  auto s = pool.stats();
  EXPECT_EQ(s.trims, 1U);
  EXPECT_EQ(s.trimmed_bytes, static_cast<std::size_t>(1) << 20);
  EXPECT_EQ(s.retained_bytes, 0U);
  { auto small = pool.checkout(1024); }  // within budget: retained
  s = pool.stats();
  EXPECT_EQ(s.retained_bytes, 1024U);
  EXPECT_EQ(s.trims, 1U);
}

TEST(ArenaPool, TrimmingDropsLargestFirst) {
  arena_pool pool(/*retain_limit=*/10 << 20);
  {
    auto a = pool.checkout(1024);
    auto b = pool.checkout(1 << 20);
  }
  EXPECT_EQ(pool.trim(2048), static_cast<std::size_t>(1) << 20);
  const auto s = pool.stats();
  EXPECT_EQ(s.retained_bytes, 1024U);  // the small arena survived
  EXPECT_EQ(pool.trim(0), 1024U);
  EXPECT_EQ(pool.stats().retained_bytes, 0U);
}

TEST(ArenaPool, SetRetainLimitTrimsImmediately) {
  arena_pool pool;
  { auto lease = pool.checkout(1 << 20); }
  EXPECT_EQ(pool.stats().retained_bytes, static_cast<std::size_t>(1) << 20);
  pool.set_retain_limit(0);
  EXPECT_EQ(pool.stats().retained_bytes, 0U);
}

TEST(ArenaPool, HighWaterTracksPeakPoolBytes) {
  arena_pool pool;
  {
    auto a = pool.checkout(1000);
    auto b = pool.checkout(2000);
    EXPECT_EQ(pool.stats().in_use_bytes, 3000U);
  }
  EXPECT_EQ(pool.stats().in_use_bytes, 0U);
  EXPECT_GE(pool.stats().high_water_bytes, 3000U);
  // Reuse does not raise the high water.
  const auto before = pool.stats().high_water_bytes;
  { auto c = pool.checkout(1500); }
  EXPECT_EQ(pool.stats().high_water_bytes, before);
}

TEST(ArenaPool, LeaseMoveTransfersOwnership) {
  arena_pool pool;
  arena_lease outer;
  EXPECT_FALSE(outer);
  {
    auto inner = pool.checkout(256);
    outer = std::move(inner);
    EXPECT_FALSE(inner);  // NOLINT(bugprone-use-after-move): moved-from check
  }
  EXPECT_TRUE(outer);
  EXPECT_EQ(pool.stats().in_use_bytes, outer.capacity());
}

TEST(ArenaPool, ConcurrentCheckoutsAreIsolatedAndAccounted) {
  arena_pool pool;
  constexpr std::size_t threads = 8;
  constexpr std::size_t iterations = 200;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&pool, t] {
      xoshiro256ss rng(t + 1);
      for (std::size_t i = 0; i < iterations; ++i) {
        const std::size_t bytes = 64 + rng.bounded(4096);
        auto lease = pool.checkout(bytes);
        // Fill with a thread-distinct pattern and verify it sticks — a
        // double-handed-out arena would tear this under contention.
        const auto pattern = static_cast<unsigned char>(0x10 + t);
        std::memset(lease.data(), pattern, bytes);
        for (std::size_t b = 0; b < bytes; b += 97) {
          ASSERT_EQ(static_cast<unsigned char>(lease.data()[b]), pattern);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto s = pool.stats();
  EXPECT_EQ(s.checkouts, threads * iterations);
  EXPECT_EQ(s.in_use_bytes, 0U);
  EXPECT_EQ(s.reuses + s.allocations, s.checkouts);
}

}  // namespace
}  // namespace spechd
