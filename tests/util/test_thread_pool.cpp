#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace spechd {
namespace {

TEST(ThreadPool, DefaultHasAtLeastOneWorker) {
  thread_pool pool;
  EXPECT_GE(pool.size(), 1U);
}

TEST(ThreadPool, SubmitReturnsValue) {
  thread_pool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  thread_pool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForTouchesEveryIndexOnce) {
  thread_pool pool(4);
  constexpr std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  thread_pool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForMoreJobsThanWorkers) {
  thread_pool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 1000 * 999 / 2);
}

TEST(ThreadPool, ParallelForRethrowsWorkerException) {
  thread_pool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("job 37 failed");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForExplicitGrainTouchesEveryIndexOnce) {
  thread_pool pool(3);
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); }, /*grain=*/7);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, NestedParallelForFromWorkerCompletes) {
  // Nested use must not deadlock even on a single-worker pool: the caller
  // participates in the claim loop, so completion never depends on a free
  // queue slot.
  for (const std::size_t workers : {1UL, 4UL}) {
    thread_pool pool(workers);
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(8, [&](std::size_t outer) {
      pool.parallel_for(100, [&](std::size_t inner) { sum += outer * 100 + inner; });
    });
    // sum over outer in [0,8), inner in [0,100) of outer*100 + inner:
    // 10000 * (0+...+7) + 8 * (0+...+99) = 280000 + 39600
    EXPECT_EQ(sum.load(), 319600U);
  }
}

TEST(ThreadPool, ManySubmissionsComplete) {
  thread_pool pool(3);
  std::vector<std::future<int>> futures;
  futures.reserve(500);
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([i] { return i * 2; }));
  }
  for (int i = 0; i < 500; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * 2);
}

}  // namespace
}  // namespace spechd
