#include "cluster/dbscan.hpp"

#include <gtest/gtest.h>

namespace spechd::cluster {
namespace {

// Two tight groups {0,1,2} and {3,4,5} plus an outlier 6.
hdc::distance_matrix_f32 clustered_matrix() {
  hdc::distance_matrix_f32 m(7);
  for (std::size_t i = 1; i < 7; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const bool group_a = i < 3 && j < 3;
      const bool group_b = i >= 3 && i < 6 && j >= 3 && j < 6;
      m.at(i, j) = (group_a || group_b) ? 0.1F : 0.9F;
    }
  }
  return m;
}

TEST(Dbscan, FindsTwoClustersAndNoise) {
  dbscan_config c;
  c.eps = 0.2;
  c.min_pts = 2;
  const auto flat = dbscan(clustered_matrix(), c);
  EXPECT_EQ(flat.cluster_count, 2U);
  EXPECT_EQ(flat.labels[0], flat.labels[1]);
  EXPECT_EQ(flat.labels[1], flat.labels[2]);
  EXPECT_EQ(flat.labels[3], flat.labels[4]);
  EXPECT_NE(flat.labels[0], flat.labels[3]);
  EXPECT_EQ(flat.labels[6], -1);  // outlier is noise
}

TEST(Dbscan, EpsTooSmallAllNoise) {
  dbscan_config c;
  c.eps = 0.05;
  c.min_pts = 2;
  const auto flat = dbscan(clustered_matrix(), c);
  EXPECT_EQ(flat.cluster_count, 0U);
  for (const auto l : flat.labels) EXPECT_EQ(l, -1);
}

TEST(Dbscan, EpsHugeOneCluster) {
  dbscan_config c;
  c.eps = 1.0;
  c.min_pts = 2;
  const auto flat = dbscan(clustered_matrix(), c);
  EXPECT_EQ(flat.cluster_count, 1U);
  for (const auto l : flat.labels) EXPECT_EQ(l, 0);
}

TEST(Dbscan, MinPtsGovernsCorePoints) {
  dbscan_config c;
  c.eps = 0.2;
  c.min_pts = 4;  // groups of 3 no longer have core points
  const auto flat = dbscan(clustered_matrix(), c);
  EXPECT_EQ(flat.cluster_count, 0U);
}

TEST(Dbscan, EmptyInput) {
  dbscan_config c;
  const auto flat = dbscan(hdc::distance_matrix_f32(0), c);
  EXPECT_EQ(flat.cluster_count, 0U);
  EXPECT_TRUE(flat.labels.empty());
}

TEST(Dbscan, BorderPointJoinsCluster) {
  // Points 0,1,2 tight; point 3 within eps of 2 only (border point).
  hdc::distance_matrix_f32 m(4);
  m.at(1, 0) = 0.1F;
  m.at(2, 0) = 0.1F;
  m.at(2, 1) = 0.1F;
  m.at(3, 0) = 0.5F;
  m.at(3, 1) = 0.5F;
  m.at(3, 2) = 0.15F;
  dbscan_config c;
  c.eps = 0.2;
  c.min_pts = 3;
  const auto flat = dbscan(m, c);
  EXPECT_EQ(flat.cluster_count, 1U);
  EXPECT_EQ(flat.labels[3], flat.labels[2]);
}

TEST(Dbscan, EpsBoundaryInclusive) {
  hdc::distance_matrix_f32 m(2);
  m.at(1, 0) = 0.25F;  // exactly representable in both float and double
  dbscan_config c;
  c.eps = 0.25;
  c.min_pts = 2;
  const auto flat = dbscan(m, c);
  EXPECT_EQ(flat.cluster_count, 1U);
}

}  // namespace
}  // namespace spechd::cluster
