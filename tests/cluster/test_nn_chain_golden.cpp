// Golden equivalence suite for the kernel-backed flat-matrix NN-chain
// (cluster/nn_chain.cpp) against two independent references:
//
//   * nn_chain_hac_condensed — the pre-kernel condensed-matrix NN-chain,
//     kept verbatim in the library. The flat implementation must match it
//     *bit for bit*: identical merge sequences, heights, and sizes, on
//     every linkage, both element types, and deliberately tied inputs
//     (HAC tie-break and store-rounding bugs are silent otherwise).
//   * naive_hac — exhaustive greedy HAC, same dendrogram for reducible
//     linkages on tie-free inputs.
//
// The SIMD variants of nearest_active_scan / lance_williams_row_update are
// swept explicitly: every supported variant must reproduce the scalar
// dispatch bit for bit.
#include "cluster/nn_chain.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cluster/naive_hac.hpp"
#include "hdc/cpu_kernels.hpp"
#include "util/rng.hpp"

namespace spechd::cluster {
namespace {

namespace kn = hdc::kernels;

constexpr linkage k_all_linkages[] = {linkage::single, linkage::complete,
                                      linkage::average, linkage::ward};
constexpr std::size_t k_golden_sizes[] = {2, 3, 17, 64, 257};

hdc::distance_matrix_f32 random_f32(std::size_t n, std::uint64_t seed) {
  xoshiro256ss rng(seed);
  hdc::distance_matrix_f32 m(n);
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      m.at(i, j) = static_cast<float>(rng.uniform(0.01, 1.0));
    }
  }
  return m;
}

hdc::distance_matrix_q16 random_q16(std::size_t n, std::uint64_t seed) {
  xoshiro256ss rng(seed);
  hdc::distance_matrix_q16 m(n);
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      m.at(i, j) = q16::from_double(rng.uniform(0.01, 1.0));
    }
  }
  return m;
}

/// Heavily tied input: every distance drawn from a four-value set, so the
/// prefer-prev tie-break decides most of the merge order.
template <typename Matrix, typename Convert>
Matrix tied_matrix(std::size_t n, std::uint64_t seed, Convert convert) {
  xoshiro256ss rng(seed);
  Matrix m(n);
  constexpr double values[] = {0.25, 0.5, 0.5, 0.75, 0.75, 0.75};
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      m.at(i, j) = convert(values[rng.bounded(6)]);
    }
  }
  return m;
}

void expect_identical(const hac_result& got, const hac_result& want,
                      const std::string& what) {
  ASSERT_EQ(got.tree.leaves(), want.tree.leaves()) << what;
  ASSERT_EQ(got.tree.merges().size(), want.tree.merges().size()) << what;
  for (std::size_t k = 0; k < got.tree.merges().size(); ++k) {
    const auto& g = got.tree.merges()[k];
    const auto& w = want.tree.merges()[k];
    EXPECT_EQ(g.left, w.left) << what << " merge " << k;
    EXPECT_EQ(g.right, w.right) << what << " merge " << k;
    // Bit-identical heights, not approximately equal: == on doubles.
    EXPECT_EQ(g.distance, w.distance) << what << " merge " << k;
    EXPECT_EQ(g.size, w.size) << what << " merge " << k;
  }
}

std::string case_name(const char* kind, linkage link, std::size_t n, std::uint64_t seed) {
  return std::string(kind) + "/" + std::string(linkage_name(link)) +
         "/n=" + std::to_string(n) + "/seed=" + std::to_string(seed);
}

TEST(NnChainGolden, FlatMatchesCondensedF32) {
  for (const auto link : k_all_linkages) {
    for (const std::size_t n : k_golden_sizes) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const auto m = random_f32(n, seed);
        expect_identical(nn_chain_hac(m, link), nn_chain_hac_condensed(m, link),
                         case_name("f32", link, n, seed));
      }
    }
  }
}

TEST(NnChainGolden, FlatMatchesCondensedQ16) {
  for (const auto link : k_all_linkages) {
    for (const std::size_t n : k_golden_sizes) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const auto m = random_q16(n, seed);
        expect_identical(nn_chain_hac(m, link), nn_chain_hac_condensed(m, link),
                         case_name("q16", link, n, seed));
      }
    }
  }
}

TEST(NnChainGolden, FlatMatchesNaiveF32) {
  // Tie-free random matrices: NN-chain (either implementation) and the
  // exhaustive greedy method must produce the same dendrogram for every
  // reducible linkage. Heights compare within 1e-9 rather than bit-exact:
  // the two algorithms *discover* merges in different orders, so their
  // Lance–Williams accumulations associate differently at the last ULP
  // (bit-exactness is asserted against the condensed reference, which
  // shares the discovery order).
  for (const auto link : k_all_linkages) {
    for (const std::size_t n : k_golden_sizes) {
      const auto m = random_f32(n, 71 + n);
      const auto got = nn_chain_hac(m, link);
      const auto want = naive_hac(m, link);
      const auto what = case_name("f32-vs-naive", link, n, 71 + n);
      ASSERT_EQ(got.tree.merges().size(), want.tree.merges().size()) << what;
      for (std::size_t k = 0; k < got.tree.merges().size(); ++k) {
        const auto& g = got.tree.merges()[k];
        const auto& w = want.tree.merges()[k];
        EXPECT_EQ(g.left, w.left) << what << " merge " << k;
        EXPECT_EQ(g.right, w.right) << what << " merge " << k;
        EXPECT_NEAR(g.distance, w.distance, 1e-9) << what << " merge " << k;
        EXPECT_EQ(g.size, w.size) << what << " merge " << k;
      }
    }
  }
}

TEST(NnChainGolden, FlatMatchesNaiveQ16) {
  // NN-chain and naive HAC only promise the same dendrogram on tie-free
  // inputs, and random q16 values collide on the 65536-step grid. Distinct
  // raw values keep min/max linkages tie-free for the whole run (their
  // updates only ever *select* existing values), so heights match exactly.
  // average/ward can re-create grid collisions mid-run and are covered by
  // the condensed-reference golden tests instead.
  for (const auto link : {linkage::single, linkage::complete}) {
    for (const std::size_t n : k_golden_sizes) {
      xoshiro256ss rng(171 + n);
      std::vector<std::uint16_t> raws(65536);
      for (std::uint32_t r = 0; r < raws.size(); ++r) {
        raws[r] = static_cast<std::uint16_t>(r);
      }
      for (std::size_t i = raws.size() - 1; i > 0; --i) {
        std::swap(raws[i], raws[rng.bounded(i + 1)]);
      }
      hdc::distance_matrix_q16 m(n);
      std::size_t next = 0;
      for (std::size_t i = 1; i < n; ++i) {
        for (std::size_t j = 0; j < i; ++j) {
          m.at(i, j) = q16::from_raw(raws[next++]);
        }
      }
      expect_identical(nn_chain_hac(m, link), naive_hac(m, link),
                       case_name("q16-vs-naive", link, n, 171 + n));
    }
  }
}

TEST(NnChainGolden, TiedDistancesMatchCondensedF32) {
  // Deliberate ties pin Müllner's prefer-prev tie-break: any deviation in
  // the scan's argmin order or the prev preference changes the merge
  // sequence and fails here.
  for (const auto link : k_all_linkages) {
    for (const std::size_t n : k_golden_sizes) {
      for (std::uint64_t seed = 11; seed <= 13; ++seed) {
        const auto m = tied_matrix<hdc::distance_matrix_f32>(
            n, seed, [](double v) { return static_cast<float>(v); });
        expect_identical(nn_chain_hac(m, link), nn_chain_hac_condensed(m, link),
                         case_name("tied-f32", link, n, seed));
      }
    }
  }
}

TEST(NnChainGolden, TiedDistancesMatchCondensedQ16) {
  for (const auto link : k_all_linkages) {
    for (const std::size_t n : k_golden_sizes) {
      for (std::uint64_t seed = 21; seed <= 23; ++seed) {
        const auto m = tied_matrix<hdc::distance_matrix_q16>(
            n, seed, [](double v) { return q16::from_double(v); });
        expect_identical(nn_chain_hac(m, link), nn_chain_hac_condensed(m, link),
                         case_name("tied-q16", link, n, seed));
      }
    }
  }
}

TEST(NnChainGolden, KernelVariantsBitIdentical) {
  // The flat implementation must not change a single bit when dispatch
  // moves between scalar and any supported SIMD variant.
  const auto initial = kn::active();
  for (const std::size_t n : {17UL, 64UL, 257UL}) {
    const auto f32 = random_f32(n, 5);
    const auto q16m = random_q16(n, 6);
    const auto tied = tied_matrix<hdc::distance_matrix_f32>(
        n, 7, [](double v) { return static_cast<float>(v); });
    for (const auto link : k_all_linkages) {
      kn::set_active(kn::variant::scalar);
      const auto ref_f32 = nn_chain_hac(f32, link);
      const auto ref_q16 = nn_chain_hac(q16m, link);
      const auto ref_tied = nn_chain_hac(tied, link);
      for (const auto v : {kn::variant::avx2, kn::variant::avx512}) {
        if (!kn::supported(v)) continue;
        kn::set_active(v);
        expect_identical(nn_chain_hac(f32, link), ref_f32,
                         case_name(kn::variant_name(v), link, n, 5));
        expect_identical(nn_chain_hac(q16m, link), ref_q16,
                         case_name(kn::variant_name(v), link, n, 6));
        expect_identical(nn_chain_hac(tied, link), ref_tied,
                         case_name(kn::variant_name(v), link, n, 7));
      }
    }
  }
  kn::set_active(initial);
}

TEST(NnChainGolden, PermutationInvariantHeights) {
  // Relabelling the inputs permutes the leaves but must not change the
  // multiset of dendrogram heights (the merge tree is unique on tie-free
  // inputs).
  for (const auto link : k_all_linkages) {
    const std::size_t n = 64;
    const auto m = random_f32(n, 31);
    std::vector<std::uint32_t> perm(n);
    for (std::uint32_t i = 0; i < n; ++i) perm[i] = i;
    xoshiro256ss rng(32);
    for (std::size_t i = n - 1; i > 0; --i) {
      std::swap(perm[i], perm[rng.bounded(i + 1)]);
    }
    hdc::distance_matrix_f32 p(n);
    for (std::size_t i = 1; i < n; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        p.at(perm[i], perm[j]) = m.at(i, j);
      }
    }
    auto heights = [](const hac_result& r) {
      std::vector<double> h;
      for (const auto& step : r.tree.merges()) h.push_back(step.distance);
      std::sort(h.begin(), h.end());
      return h;
    };
    const auto ha = heights(nn_chain_hac(m, link));
    const auto hb = heights(nn_chain_hac(p, link));
    ASSERT_EQ(ha.size(), hb.size()) << linkage_name(link);
    // min/max heights are permutation-exact (updates only select values);
    // average/ward accumulate in discovery order, so permuting the leaves
    // reassociates their floating-point sums at the last ULP.
    const bool exact = link == linkage::single || link == linkage::complete;
    for (std::size_t k = 0; k < ha.size(); ++k) {
      if (exact) {
        EXPECT_EQ(ha[k], hb[k]) << linkage_name(link) << " height " << k;
      } else {
        EXPECT_NEAR(ha[k], hb[k], 1e-12) << linkage_name(link) << " height " << k;
      }
    }
  }
}

// Large-matrix golden pass, labelled [perf]: excluded from the default
// ctest run (see CMakeLists: CONFIGURATIONS perf).
TEST(NnChainGoldenPerf, LargeMatrixMatchesCondensed) {
  const auto m = random_f32(1024, 99);
  for (const auto link : {linkage::complete, linkage::ward}) {
    expect_identical(nn_chain_hac(m, link), nn_chain_hac_condensed(m, link),
                     case_name("perf-f32", link, 1024, 99));
  }
}

}  // namespace
}  // namespace spechd::cluster
