#include "cluster/dendrogram.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"

namespace spechd::cluster {
namespace {

// A 4-leaf dendrogram: (0,1)@0.1 -> id4; (2,3)@0.2 -> id5; (4,5)@0.5 -> id6.
dendrogram sample_tree() {
  std::vector<merge_step> merges = {
      {0, 1, 0.1, 2},
      {2, 3, 0.2, 2},
      {4, 5, 0.5, 4},
  };
  return dendrogram(4, std::move(merges));
}

TEST(Dendrogram, CutBelowFirstMergeGivesSingletons) {
  const auto flat = sample_tree().cut(0.05);
  EXPECT_EQ(flat.cluster_count, 4U);
  std::set<std::int32_t> labels(flat.labels.begin(), flat.labels.end());
  EXPECT_EQ(labels.size(), 4U);
}

TEST(Dendrogram, CutMidHeight) {
  const auto flat = sample_tree().cut(0.3);
  EXPECT_EQ(flat.cluster_count, 2U);
  EXPECT_EQ(flat.labels[0], flat.labels[1]);
  EXPECT_EQ(flat.labels[2], flat.labels[3]);
  EXPECT_NE(flat.labels[0], flat.labels[2]);
}

TEST(Dendrogram, CutAboveRootIsOneCluster) {
  const auto flat = sample_tree().cut(1.0);
  EXPECT_EQ(flat.cluster_count, 1U);
  for (const auto l : flat.labels) EXPECT_EQ(l, 0);
}

TEST(Dendrogram, CutThresholdInclusive) {
  const auto flat = sample_tree().cut(0.2);
  EXPECT_EQ(flat.cluster_count, 2U);  // merge at exactly 0.2 applies
}

TEST(Dendrogram, CutKExactCounts) {
  const auto tree = sample_tree();
  EXPECT_EQ(tree.cut_k(1).cluster_count, 1U);
  EXPECT_EQ(tree.cut_k(2).cluster_count, 2U);
  EXPECT_EQ(tree.cut_k(3).cluster_count, 3U);
  EXPECT_EQ(tree.cut_k(4).cluster_count, 4U);
}

TEST(Dendrogram, CutKAboveLeavesGivesAllSingletons) {
  const auto flat = sample_tree().cut_k(10);
  EXPECT_EQ(flat.cluster_count, 4U);
}

TEST(Dendrogram, CutKZeroRejected) {
  EXPECT_THROW(sample_tree().cut_k(0), logic_error);
}

TEST(Dendrogram, MonotoneDetection) {
  EXPECT_TRUE(sample_tree().monotone());
  std::vector<merge_step> inverted = {{0, 1, 0.5, 2}, {2, 3, 0.2, 2}, {4, 5, 0.6, 4}};
  EXPECT_FALSE(dendrogram(4, std::move(inverted)).monotone());
}

TEST(Dendrogram, MergeCountMustMatchLeaves) {
  std::vector<merge_step> merges = {{0, 1, 0.1, 2}};
  EXPECT_THROW(dendrogram(4, std::move(merges)), logic_error);
}

TEST(BuildDendrogram, SortsAndRelabels) {
  // Raw merges out of height order, using slot ids.
  std::vector<raw_merge> raw = {
      {2, 3, 0.2},
      {0, 1, 0.1},
      {1, 3, 0.5},  // slots 1 and 3 now represent clusters {0,1} and {2,3}
  };
  const auto tree = build_dendrogram(4, std::move(raw));
  ASSERT_EQ(tree.merges().size(), 3U);
  EXPECT_TRUE(tree.monotone());
  // First sorted merge is (0,1)@0.1 -> internal id 4.
  EXPECT_DOUBLE_EQ(tree.merges()[0].distance, 0.1);
  EXPECT_EQ(tree.merges()[0].left, 0U);
  EXPECT_EQ(tree.merges()[0].right, 1U);
  EXPECT_EQ(tree.merges()[0].size, 2U);
  // Second is (2,3)@0.2 -> id 5.
  EXPECT_DOUBLE_EQ(tree.merges()[1].distance, 0.2);
  // Root joins ids 4 and 5 with size 4.
  EXPECT_EQ(tree.merges()[2].left, 4U);
  EXPECT_EQ(tree.merges()[2].right, 5U);
  EXPECT_EQ(tree.merges()[2].size, 4U);
}

TEST(BuildDendrogram, SingleLeaf) {
  const auto tree = build_dendrogram(1, {});
  EXPECT_EQ(tree.leaves(), 1U);
  const auto flat = tree.cut(0.5);
  EXPECT_EQ(flat.cluster_count, 1U);
}

TEST(FlatClustering, SizesAndNonSingletonFraction) {
  flat_clustering c;
  c.labels = {0, 0, 1, 2, 2, 2};
  c.cluster_count = 3;
  const auto sizes = cluster_sizes(c);
  EXPECT_EQ(sizes[0], 2U);
  EXPECT_EQ(sizes[1], 1U);
  EXPECT_EQ(sizes[2], 3U);
  EXPECT_NEAR(non_singleton_fraction(c), 5.0 / 6.0, 1e-12);
}

TEST(FlatClustering, NoiseLabelsExcluded) {
  flat_clustering c;
  c.labels = {-1, -1, 0, 0};
  c.cluster_count = 1;
  EXPECT_NEAR(non_singleton_fraction(c), 0.5, 1e-12);
}

}  // namespace
}  // namespace spechd::cluster
