#include "cluster/nn_chain.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cluster/naive_hac.hpp"
#include "util/rng.hpp"

namespace spechd::cluster {
namespace {

hdc::distance_matrix_f32 random_matrix(std::size_t n, std::uint64_t seed) {
  xoshiro256ss rng(seed);
  hdc::distance_matrix_f32 m(n);
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      m.at(i, j) = static_cast<float>(rng.uniform(0.01, 1.0));
    }
  }
  return m;
}

// Two well-separated groups: {0,1,2} pairwise 0.1, {3,4} pairwise 0.1,
// cross distances 0.9.
hdc::distance_matrix_f32 two_groups() {
  hdc::distance_matrix_f32 m(5);
  for (std::size_t i = 1; i < 5; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const bool same = (i < 3 && j < 3) || (i >= 3 && j >= 3);
      m.at(i, j) = same ? 0.1F : 0.9F;
    }
  }
  // Perturb to break ties deterministically.
  m.at(1, 0) = 0.08F;
  m.at(4, 3) = 0.09F;
  return m;
}

TEST(NnChain, TrivialSizes) {
  EXPECT_EQ(nn_chain_hac(hdc::distance_matrix_f32(0), linkage::complete).tree.leaves(), 0U);
  EXPECT_EQ(nn_chain_hac(hdc::distance_matrix_f32(1), linkage::complete).tree.leaves(), 1U);
  const auto two = nn_chain_hac(random_matrix(2, 1), linkage::complete);
  EXPECT_EQ(two.tree.merges().size(), 1U);
}

TEST(NnChain, RecoversTwoGroups) {
  const auto result = nn_chain_hac(two_groups(), linkage::complete);
  const auto flat = result.tree.cut(0.5);
  EXPECT_EQ(flat.cluster_count, 2U);
  EXPECT_EQ(flat.labels[0], flat.labels[1]);
  EXPECT_EQ(flat.labels[1], flat.labels[2]);
  EXPECT_EQ(flat.labels[3], flat.labels[4]);
  EXPECT_NE(flat.labels[0], flat.labels[3]);
}

TEST(NnChain, DendrogramMonotoneForReducibleLinkages) {
  for (const auto link :
       {linkage::single, linkage::complete, linkage::average, linkage::ward}) {
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const auto result = nn_chain_hac(random_matrix(40, seed), link);
      EXPECT_TRUE(result.tree.monotone())
          << linkage_name(link) << " seed " << seed;
    }
  }
}

TEST(NnChain, StatsCounted) {
  const auto result = nn_chain_hac(random_matrix(30, 9), linkage::complete);
  EXPECT_EQ(result.stats.merges, 29U);
  EXPECT_GT(result.stats.comparisons, 0U);
  EXPECT_GT(result.stats.distance_updates, 0U);
}

TEST(NnChain, FewerComparisonsThanNaive) {
  const auto m = random_matrix(128, 5);
  const auto chain = nn_chain_hac(m, linkage::complete);
  const auto naive = naive_hac(m, linkage::complete);
  EXPECT_LT(chain.stats.comparisons, naive.stats.comparisons / 4)
      << "NN-chain should need far fewer scans than the O(n^3) method";
}

// Property: NN-chain and naive HAC produce identical dendrograms for all
// reducible linkages on random tie-free matrices.
struct equiv_param {
  linkage link;
  std::size_t n;
  std::uint64_t seed;
};

class NnChainEquivalence : public ::testing::TestWithParam<equiv_param> {};

TEST_P(NnChainEquivalence, MatchesNaiveHac) {
  const auto [link, n, seed] = GetParam();
  const auto m = random_matrix(n, seed);
  const auto a = nn_chain_hac(m, link);
  const auto b = naive_hac(m, link);
  ASSERT_EQ(a.tree.merges().size(), b.tree.merges().size());
  for (std::size_t k = 0; k < a.tree.merges().size(); ++k) {
    const auto& ma = a.tree.merges()[k];
    const auto& mb = b.tree.merges()[k];
    EXPECT_EQ(ma.left, mb.left) << "merge " << k;
    EXPECT_EQ(ma.right, mb.right) << "merge " << k;
    EXPECT_NEAR(ma.distance, mb.distance, 1e-9) << "merge " << k;
    EXPECT_EQ(ma.size, mb.size) << "merge " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    LinkagesAndSizes, NnChainEquivalence,
    ::testing::Values(
        equiv_param{linkage::single, 16, 1}, equiv_param{linkage::single, 64, 2},
        equiv_param{linkage::complete, 16, 3}, equiv_param{linkage::complete, 64, 4},
        equiv_param{linkage::complete, 128, 5}, equiv_param{linkage::average, 32, 6},
        equiv_param{linkage::average, 96, 7}, equiv_param{linkage::ward, 32, 8},
        equiv_param{linkage::ward, 96, 9}));

TEST(NnChainQ16, MatchesF32WithinQuantisation) {
  // On the q16 grid the dendrogram heights differ by at most a few lsb; the
  // tree *structure* may differ on near-ties, so compare flat clusterings
  // at a threshold far from any pairwise distance.
  const auto f32 = two_groups();
  hdc::distance_matrix_q16 q(5);
  for (std::size_t i = 1; i < 5; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      q.at(i, j) = q16::from_double(f32.at(i, j));
    }
  }
  const auto a = nn_chain_hac(f32, linkage::complete).tree.cut(0.5);
  const auto b = nn_chain_hac(q, linkage::complete).tree.cut(0.5);
  EXPECT_EQ(a.cluster_count, b.cluster_count);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(a.labels[i], b.labels[i]);
}

TEST(NnChainQ16, MonotoneDendrogram) {
  xoshiro256ss rng(11);
  hdc::distance_matrix_q16 q(50);
  for (std::size_t i = 1; i < 50; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      q.at(i, j) = q16::from_double(rng.uniform(0.01, 1.0));
    }
  }
  EXPECT_TRUE(nn_chain_hac(q, linkage::complete).tree.monotone());
}

// --- degenerate inputs ------------------------------------------------------
// These used to hang the chain loop or push out-of-range indices; both the
// flat and the condensed implementation must terminate with a full, valid
// merge sequence.

void expect_valid_full_dendrogram(const hac_result& r, std::size_t n) {
  ASSERT_EQ(r.tree.leaves(), n);
  ASSERT_EQ(r.tree.merges().size(), n == 0 ? 0 : n - 1);
  for (std::size_t k = 0; k < r.tree.merges().size(); ++k) {
    const auto& m = r.tree.merges()[k];
    EXPECT_LT(m.left, n + k) << "merge " << k;
    EXPECT_LT(m.right, n + k) << "merge " << k;
    EXPECT_NE(m.left, m.right) << "merge " << k;
    EXPECT_GE(m.size, 2U) << "merge " << k;
  }
  EXPECT_TRUE(r.tree.monotone());
}

TEST(NnChainDegenerate, EmptyAndSingleton) {
  for (const auto link : {linkage::single, linkage::complete, linkage::average,
                          linkage::ward}) {
    expect_valid_full_dendrogram(nn_chain_hac(hdc::distance_matrix_f32(0), link), 0);
    expect_valid_full_dendrogram(nn_chain_hac(hdc::distance_matrix_f32(1), link), 1);
    expect_valid_full_dendrogram(nn_chain_hac_condensed(hdc::distance_matrix_f32(0), link), 0);
    expect_valid_full_dendrogram(nn_chain_hac_condensed(hdc::distance_matrix_f32(1), link), 1);
  }
}

TEST(NnChainDegenerate, AllEqualDistances) {
  // Every pair at the same distance: pure tie-break territory. All merges
  // must land at exactly that height, and flat must match condensed.
  for (const std::size_t n : {2UL, 5UL, 33UL}) {
    hdc::distance_matrix_f32 m(n);
    for (std::size_t i = 1; i < n; ++i) {
      for (std::size_t j = 0; j < i; ++j) m.at(i, j) = 0.5F;
    }
    for (const auto link : {linkage::single, linkage::complete, linkage::average}) {
      const auto flat = nn_chain_hac(m, link);
      const auto cond = nn_chain_hac_condensed(m, link);
      expect_valid_full_dendrogram(flat, n);
      for (const auto& step : flat.tree.merges()) EXPECT_DOUBLE_EQ(step.distance, 0.5);
      ASSERT_EQ(flat.tree.merges().size(), cond.tree.merges().size());
      for (std::size_t k = 0; k < flat.tree.merges().size(); ++k) {
        EXPECT_EQ(flat.tree.merges()[k].left, cond.tree.merges()[k].left) << k;
        EXPECT_EQ(flat.tree.merges()[k].right, cond.tree.merges()[k].right) << k;
      }
    }
  }
}

TEST(NnChainDegenerate, PartialInfinityDoesNotHang) {
  // One finite pair, everything else unreachable: the finite pair merges
  // first, the +inf merges follow without hanging or going out of range.
  constexpr float inf = std::numeric_limits<float>::infinity();
  hdc::distance_matrix_f32 m(5);
  for (std::size_t i = 1; i < 5; ++i) {
    for (std::size_t j = 0; j < i; ++j) m.at(i, j) = inf;
  }
  m.at(1, 0) = 0.2F;
  for (const auto link : {linkage::single, linkage::complete}) {
    const auto flat = nn_chain_hac(m, link);
    const auto cond = nn_chain_hac_condensed(m, link);
    expect_valid_full_dendrogram(flat, 5);
    expect_valid_full_dendrogram(cond, 5);
    EXPECT_DOUBLE_EQ(flat.tree.merges().front().distance, 0.2F);
    // A cut below the first height leaves n singletons; above it, the
    // finite pair clusters and the unreachable rest stay singletons.
    EXPECT_EQ(flat.tree.cut(0.5).cluster_count, 4U);
  }
}

TEST(NnChainDegenerate, AllInfinityTerminates) {
  // Fully unreachable input: n-1 merges at +inf, valid indices, no hang.
  constexpr float inf = std::numeric_limits<float>::infinity();
  for (const std::size_t n : {2UL, 3UL, 9UL}) {
    hdc::distance_matrix_f32 m(n);
    for (std::size_t i = 1; i < n; ++i) {
      for (std::size_t j = 0; j < i; ++j) m.at(i, j) = inf;
    }
    for (const auto link : {linkage::single, linkage::complete, linkage::ward}) {
      const auto flat = nn_chain_hac(m, link);
      const auto cond = nn_chain_hac_condensed(m, link);
      expect_valid_full_dendrogram(flat, n);
      expect_valid_full_dendrogram(cond, n);
      if (link == linkage::ward) continue;
      // (ward's update on +inf operands is inf - inf -> NaN, which the
      // reference arithmetic clamps to 0 before the sqrt, so its later
      // heights legitimately collapse; min/max linkages stay at +inf.)
      for (const auto& step : flat.tree.merges()) {
        EXPECT_TRUE(std::isinf(step.distance)) << linkage_name(link);
      }
      EXPECT_EQ(flat.tree.cut(1.0).cluster_count, n);
    }
  }
}

TEST(NaiveHac, TwoGroupsRecovered) {
  const auto flat = naive_hac(two_groups(), linkage::complete).tree.cut(0.5);
  EXPECT_EQ(flat.cluster_count, 2U);
}

TEST(NaiveHac, SingleLinkChaining) {
  // A chain 0-1-2-3 with adjacent distance 0.1 and far pairs 0.9: single
  // linkage merges the whole chain below 0.2, complete linkage does not.
  hdc::distance_matrix_f32 m(4);
  for (std::size_t i = 1; i < 4; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      m.at(i, j) = (i - j == 1) ? 0.1F : 0.9F;
    }
  }
  // Tiny perturbations to avoid exact ties.
  m.at(1, 0) = 0.09F;
  m.at(3, 2) = 0.11F;
  const auto single = naive_hac(m, linkage::single).tree.cut(0.2);
  const auto complete = naive_hac(m, linkage::complete).tree.cut(0.2);
  EXPECT_EQ(single.cluster_count, 1U);
  EXPECT_GT(complete.cluster_count, 1U);
}

}  // namespace
}  // namespace spechd::cluster
