#include "cluster/linkage.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace spechd::cluster {
namespace {

TEST(Linkage, Names) {
  EXPECT_EQ(linkage_name(linkage::single), "single");
  EXPECT_EQ(linkage_name(linkage::complete), "complete");
  EXPECT_EQ(linkage_name(linkage::average), "average");
  EXPECT_EQ(linkage_name(linkage::ward), "ward");
}

TEST(LanceWilliams, SingleIsMin) {
  EXPECT_DOUBLE_EQ(lance_williams(linkage::single, 0.3, 0.7, 0.1, 1, 1, 1), 0.3);
  EXPECT_DOUBLE_EQ(lance_williams(linkage::single, 0.9, 0.2, 0.1, 5, 3, 2), 0.2);
}

TEST(LanceWilliams, CompleteIsMax) {
  EXPECT_DOUBLE_EQ(lance_williams(linkage::complete, 0.3, 0.7, 0.1, 1, 1, 1), 0.7);
  EXPECT_DOUBLE_EQ(lance_williams(linkage::complete, 0.9, 0.2, 0.1, 5, 3, 2), 0.9);
}

TEST(LanceWilliams, AverageIsSizeWeighted) {
  // sizes 1 and 3: (1*0.4 + 3*0.8) / 4 = 0.7.
  EXPECT_DOUBLE_EQ(lance_williams(linkage::average, 0.4, 0.8, 0.0, 1, 3, 1), 0.7);
}

TEST(LanceWilliams, AverageEqualSizesIsMidpoint) {
  EXPECT_DOUBLE_EQ(lance_williams(linkage::average, 0.2, 0.6, 0.0, 2, 2, 7), 0.4);
}

TEST(LanceWilliams, WardSingletonsReduceToEuclideanFormula) {
  // For all-singleton clusters: d_k(ab) = sqrt((2 d_ka^2 + 2 d_kb^2 - d_ab^2)/3).
  const double d_ka = 1.0;
  const double d_kb = 2.0;
  const double d_ab = 1.5;
  const double expected =
      std::sqrt((2 * d_ka * d_ka + 2 * d_kb * d_kb - d_ab * d_ab) / 3.0);
  EXPECT_NEAR(lance_williams(linkage::ward, d_ka, d_kb, d_ab, 1, 1, 1), expected, 1e-12);
}

TEST(LanceWilliams, WardClampsNegativeToZero) {
  // Degenerate inputs can drive the radicand negative; result must be 0.
  EXPECT_DOUBLE_EQ(lance_williams(linkage::ward, 0.0, 0.0, 10.0, 1, 1, 1), 0.0);
}

TEST(LanceWilliams, MonotoneBetweenMinAndMaxForAverage) {
  for (double d_ka = 0.1; d_ka < 1.0; d_ka += 0.2) {
    for (double d_kb = 0.1; d_kb < 1.0; d_kb += 0.2) {
      const double avg = lance_williams(linkage::average, d_ka, d_kb, 0.0, 3, 5, 2);
      EXPECT_GE(avg, std::min(d_ka, d_kb) - 1e-12);
      EXPECT_LE(avg, std::max(d_ka, d_kb) + 1e-12);
    }
  }
}

}  // namespace
}  // namespace spechd::cluster
