#include "cluster/consensus.hpp"

#include <gtest/gtest.h>

namespace spechd::cluster {
namespace {

TEST(Medoids, PicksLowestAverageDistanceMember) {
  // Cluster {0,1,2}: 1 is central (distances 0.1 to both; 0-2 distance 0.4).
  hdc::distance_matrix_f32 m(3);
  m.at(1, 0) = 0.1F;
  m.at(2, 1) = 0.1F;
  m.at(2, 0) = 0.4F;
  flat_clustering c;
  c.labels = {0, 0, 0};
  c.cluster_count = 1;
  const auto reps = medoids(c, m);
  ASSERT_EQ(reps.size(), 1U);
  EXPECT_EQ(reps[0], 1U);
}

TEST(Medoids, SingletonIsItsOwnMedoid) {
  hdc::distance_matrix_f32 m(3);
  m.at(1, 0) = 0.1F;
  m.at(2, 0) = 0.5F;
  m.at(2, 1) = 0.5F;
  flat_clustering c;
  c.labels = {0, 0, 1};
  c.cluster_count = 2;
  const auto reps = medoids(c, m);
  EXPECT_EQ(reps[1], 2U);
}

TEST(Medoids, SizeMismatchThrows) {
  hdc::distance_matrix_f32 m(2);
  flat_clustering c;
  c.labels = {0};
  c.cluster_count = 1;
  EXPECT_THROW(medoids(c, m), logic_error);
}

TEST(MergeConsensus, AveragesSharedBins) {
  ms::spectrum a;
  a.title = "a";
  a.precursor_mz = 500.0;
  a.precursor_charge = 2;
  a.peaks = {{100.00, 10.0F}, {200.0, 20.0F}};
  ms::spectrum b;
  b.peaks = {{100.02, 30.0F}, {300.0, 40.0F}};  // 100.02 shares a's first bin

  const auto consensus = merge_consensus({&a, &b}, a, 0.05);
  EXPECT_EQ(consensus.precursor_charge, 2);
  ASSERT_EQ(consensus.peaks.size(), 3U);
  // Shared bin: intensity (10+30)/2 = 20, m/z intensity-weighted.
  EXPECT_NEAR(consensus.peaks[0].intensity, 20.0F, 1e-4);
  EXPECT_GT(consensus.peaks[0].mz, 100.0);
  EXPECT_LT(consensus.peaks[0].mz, 100.02);
  // Unshared bins averaged over member count: 20/2 = 10, 40/2 = 20.
  EXPECT_NEAR(consensus.peaks[1].intensity, 10.0F, 1e-4);
  EXPECT_NEAR(consensus.peaks[2].intensity, 20.0F, 1e-4);
}

TEST(MergeConsensus, EmptyMembersThrows) {
  ms::spectrum medoid;
  EXPECT_THROW(merge_consensus({}, medoid, 0.05), logic_error);
}

TEST(ConsensusSpectra, OnePerClusterSingletonsPassThrough) {
  hdc::distance_matrix_f32 m(3);
  m.at(1, 0) = 0.1F;
  m.at(2, 0) = 0.9F;
  m.at(2, 1) = 0.9F;
  flat_clustering c;
  c.labels = {0, 0, 1};
  c.cluster_count = 2;
  std::vector<ms::spectrum> spectra(3);
  spectra[0].title = "s0";
  spectra[0].peaks = {{100.0, 1.0F}};
  spectra[1].title = "s1";
  spectra[1].peaks = {{100.0, 1.0F}};
  spectra[2].title = "s2";
  spectra[2].peaks = {{500.0, 1.0F}};

  const auto reps = consensus_spectra(c, m, spectra);
  ASSERT_EQ(reps.size(), 2U);
  EXPECT_NE(reps[0].title.find("consensus_of=2"), std::string::npos);
  EXPECT_EQ(reps[1].title, "s2");  // singleton passes through unchanged
}

TEST(ConsensusSpectra, ConsensusPeaksSorted) {
  hdc::distance_matrix_f32 m(2);
  m.at(1, 0) = 0.1F;
  flat_clustering c;
  c.labels = {0, 0};
  c.cluster_count = 1;
  std::vector<ms::spectrum> spectra(2);
  spectra[0].peaks = {{300.0, 1.0F}, {500.0, 2.0F}};
  spectra[1].peaks = {{100.0, 1.0F}, {400.0, 2.0F}};
  const auto reps = consensus_spectra(c, m, spectra);
  ASSERT_EQ(reps.size(), 1U);
  EXPECT_TRUE(ms::peaks_sorted(reps[0]));
  EXPECT_EQ(reps[0].peaks.size(), 4U);
}

}  // namespace
}  // namespace spechd::cluster
