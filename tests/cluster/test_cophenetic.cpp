#include "cluster/cophenetic.hpp"

#include <gtest/gtest.h>

#include "cluster/naive_hac.hpp"
#include "cluster/nn_chain.hpp"
#include "util/fixed_point.hpp"
#include "util/rng.hpp"

namespace spechd::cluster {
namespace {

hdc::distance_matrix_f32 random_matrix(std::size_t n, std::uint64_t seed) {
  xoshiro256ss rng(seed);
  hdc::distance_matrix_f32 m(n);
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      m.at(i, j) = static_cast<float>(rng.uniform(0.01, 1.0));
    }
  }
  return m;
}

TEST(Cophenetic, KnownTreeHeights) {
  // (0,1)@0.1 -> id4; (2,3)@0.2 -> id5; (4,5)@0.5.
  std::vector<merge_step> merges = {{0, 1, 0.1, 2}, {2, 3, 0.2, 2}, {4, 5, 0.5, 4}};
  const dendrogram tree(4, std::move(merges));
  const auto coph = cophenetic_distances(tree);
  EXPECT_FLOAT_EQ(coph.at(0, 1), 0.1F);
  EXPECT_FLOAT_EQ(coph.at(2, 3), 0.2F);
  EXPECT_FLOAT_EQ(coph.at(0, 2), 0.5F);
  EXPECT_FLOAT_EQ(coph.at(1, 3), 0.5F);
}

TEST(Cophenetic, SingleLinkageIsMetricLowerBound) {
  // Single-linkage cophenetic distances never exceed the originals
  // (the classic subdominant-ultrametric property).
  const auto m = random_matrix(40, 3);
  const auto tree = nn_chain_hac(m, linkage::single).tree;
  const auto coph = cophenetic_distances(tree);
  for (std::size_t i = 1; i < 40; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_LE(coph.at(i, j), m.at(i, j) + 1e-6) << i << "," << j;
    }
  }
}

TEST(Cophenetic, UltrametricTriangleInequality) {
  // Cophenetic distances form an ultrametric: d(a,c) <= max(d(a,b), d(b,c)).
  const auto m = random_matrix(24, 5);
  const auto tree = nn_chain_hac(m, linkage::complete).tree;
  const auto coph = cophenetic_distances(tree);
  for (std::size_t a = 0; a < 24; ++a) {
    for (std::size_t b = 0; b < 24; ++b) {
      for (std::size_t c = 0; c < 24; ++c) {
        if (a == b || b == c || a == c) continue;
        EXPECT_LE(coph.at(a, c),
                  std::max(coph.at(a, b), coph.at(b, c)) + 1e-6);
      }
    }
  }
}

TEST(Cophenetic, CorrelationHighForWellSeparatedData) {
  // Two tight groups: the dendrogram should preserve the geometry almost
  // perfectly -> correlation near 1.
  hdc::distance_matrix_f32 m(6);
  for (std::size_t i = 1; i < 6; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const bool same = (i < 3) == (j < 3);
      m.at(i, j) = same ? 0.1F : 0.9F;
    }
  }
  m.at(1, 0) = 0.09F;  // break ties
  m.at(4, 3) = 0.11F;
  const auto tree = nn_chain_hac(m, linkage::average).tree;
  EXPECT_GT(cophenetic_correlation(m, tree), 0.95);
}

TEST(Cophenetic, AverageBeatsExtremesOnRandomData) {
  // Average linkage classically yields the best cophenetic correlation.
  const auto m = random_matrix(64, 11);
  const double c_avg =
      cophenetic_correlation(m, nn_chain_hac(m, linkage::average).tree);
  const double c_single =
      cophenetic_correlation(m, nn_chain_hac(m, linkage::single).tree);
  EXPECT_GT(c_avg, c_single);
}

TEST(Cophenetic, NaiveAndNnChainAgree) {
  const auto m = random_matrix(48, 13);
  for (const auto link : {linkage::single, linkage::complete, linkage::average}) {
    const auto a = cophenetic_distances(nn_chain_hac(m, link).tree);
    const auto b = cophenetic_distances(naive_hac(m, link).tree);
    for (std::size_t i = 1; i < 48; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        ASSERT_NEAR(a.at(i, j), b.at(i, j), 1e-6) << linkage_name(link);
      }
    }
  }
}

TEST(Cophenetic, Q16PathCorrelatesWithF32) {
  const auto m = random_matrix(40, 17);
  hdc::distance_matrix_q16 q(40);
  for (std::size_t i = 1; i < 40; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      q.at(i, j) = q16::from_double(m.at(i, j));
    }
  }
  const double c_f32 = cophenetic_correlation(m, nn_chain_hac(m, linkage::complete).tree);
  const double c_q16 = cophenetic_correlation(m, nn_chain_hac(q, linkage::complete).tree);
  EXPECT_NEAR(c_f32, c_q16, 0.02);  // 16-bit grid barely moves fidelity
}

TEST(Cophenetic, TrivialSizes) {
  EXPECT_EQ(cophenetic_distances(dendrogram(1, {})).size(), 1U);
  EXPECT_DOUBLE_EQ(cophenetic_correlation(hdc::distance_matrix_f32(1), dendrogram(1, {})),
                   1.0);
}

TEST(Cophenetic, SizeMismatchThrows) {
  EXPECT_THROW(cophenetic_correlation(hdc::distance_matrix_f32(3), dendrogram(2, {{0, 1, 0.1, 2}})),
               logic_error);
}

}  // namespace
}  // namespace spechd::cluster
