// Telemetry substrate: histogram bucketing round-trips, randomized
// percentile equivalence against the exact sorted-vector estimator
// (within the documented bucket error bound), lossless concurrent
// merging, counter wrap/reset semantics, registry identity, Prometheus
// exposition grammar, and the trace-span / slow-ring behaviours.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace spechd::obs {
namespace {

/// Builds a snapshot-style sample from a raw histogram (what the registry
/// does internally — exposed here so tests can use bare histograms
/// without polluting the process-wide registry namespace).
histogram_sample sample_of(const histogram& hist) {
  std::vector<std::uint64_t> counts;
  histogram_sample s;
  hist.merge(counts, s.count, s.sum);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] > 0) {
      s.buckets.push_back({hist_bucket_lo(i), hist_bucket_hi(i), counts[i]});
    }
  }
  return s;
}

// --- bucketing ---------------------------------------------------------------

TEST(ObsMetrics, BucketBoundsContainTheirValues) {
  // Exhaustive over the low range, sampled over the high range: every
  // value must land in a bucket whose [lo, hi] contains it.
  for (std::uint64_t v = 0; v < (1ULL << 16); ++v) {
    const auto index = hist_bucket_index(v);
    ASSERT_LT(index, k_hist_buckets);
    EXPECT_GE(v, hist_bucket_lo(index));
    EXPECT_LE(v, hist_bucket_hi(index));
  }
  std::mt19937_64 rng(42);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t v = rng() >> (rng() % 48);
    const auto index = hist_bucket_index(v);
    ASSERT_LT(index, k_hist_buckets);
    EXPECT_GE(v, hist_bucket_lo(index));
    if (index + 1 < k_hist_buckets) EXPECT_LE(v, hist_bucket_hi(index));
  }
}

TEST(ObsMetrics, BucketsAreContiguousAndMonotone) {
  for (std::size_t i = 0; i + 1 < k_hist_buckets; ++i) {
    EXPECT_EQ(hist_bucket_hi(i) + 1, hist_bucket_lo(i + 1)) << "gap at bucket " << i;
  }
  EXPECT_EQ(hist_bucket_hi(k_hist_buckets - 1), UINT64_MAX);
  // Huge values clamp into the top bucket instead of indexing out of range.
  EXPECT_EQ(hist_bucket_index(UINT64_MAX), k_hist_buckets - 1);
  EXPECT_EQ(hist_bucket_index(1ULL << 60), k_hist_buckets - 1);
}

TEST(ObsMetrics, BucketRelativeWidthIsBounded) {
  // The quantile error bound rests on every bucket above the linear range
  // being at most 1/16 of its lower bound wide.
  for (std::size_t i = k_hist_sub_count; i + 1 < k_hist_buckets; ++i) {
    const double lo = static_cast<double>(hist_bucket_lo(i));
    const double width = static_cast<double>(hist_bucket_hi(i) - hist_bucket_lo(i) + 1);
    EXPECT_LE(width, lo / k_hist_sub_count + 1.0) << "bucket " << i;
  }
}

// --- percentile accuracy -----------------------------------------------------

TEST(ObsMetrics, PercentilesMatchExactSortWithinBucketError) {
  // Randomized equivalence: the histogram's nearest-rank percentile must
  // fall in the same bucket as the exact sorted-vector nearest-rank value
  // — that is the strongest claim the log-bucketed representation can
  // make, and exactly the documented error bound.
  std::mt19937_64 rng(20260808);
  for (int trial = 0; trial < 8; ++trial) {
    histogram hist;
    std::vector<double> exact;
    const std::size_t n = 1000 + static_cast<std::size_t>(rng() % 9000);
    for (std::size_t i = 0; i < n; ++i) {
      // Mix of scales, like real latencies: ns-level noise up to
      // multi-second outliers.
      const std::uint64_t v = rng() % (1ULL << (8 + trial * 4));
      hist.record(v);
      exact.push_back(static_cast<double>(v));
    }
    std::sort(exact.begin(), exact.end());
    const auto sample = sample_of(hist);
    EXPECT_EQ(sample.count, n);
    for (const double p : {0.50, 0.90, 0.99}) {
      const double truth = percentile_sorted(exact, p);
      const double reported = sample.percentile(p);
      EXPECT_EQ(hist_bucket_index(static_cast<std::uint64_t>(truth)),
                hist_bucket_index(static_cast<std::uint64_t>(reported)))
          << "trial " << trial << " p" << p * 100 << ": exact " << truth
          << " vs reported " << reported;
    }
  }
}

TEST(ObsMetrics, EmptyHistogramReportsZeroes) {
  const histogram hist;
  const auto sample = sample_of(hist);
  EXPECT_EQ(sample.count, 0u);
  EXPECT_EQ(sample.sum, 0u);
  EXPECT_TRUE(sample.buckets.empty());
  EXPECT_EQ(sample.percentile(0.99), 0.0);
}

// --- concurrency -------------------------------------------------------------

TEST(ObsMetrics, ConcurrentRecordsMergeLosslessly) {
  histogram hist;
  constexpr std::size_t k_threads = 8;
  constexpr std::size_t k_per_thread = 100000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < k_threads; ++t) {
    threads.emplace_back([&hist, t] {
      for (std::size_t i = 0; i < k_per_thread; ++i) {
        hist.record(t * 1000 + (i % 7));
      }
    });
  }
  for (auto& th : threads) th.join();
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;
  std::uint64_t sum = 0;
  hist.merge(counts, total, sum);
  EXPECT_EQ(total, k_threads * k_per_thread);
  std::uint64_t expected_sum = 0;
  for (std::size_t t = 0; t < k_threads; ++t) {
    for (std::size_t i = 0; i < k_per_thread; ++i) expected_sum += t * 1000 + (i % 7);
  }
  EXPECT_EQ(sum, expected_sum);
}

// --- counters and gauges -----------------------------------------------------

TEST(ObsMetrics, CounterWrapsModulo64AndResets) {
  counter c;
  c.add(UINT64_MAX);
  const std::uint64_t before = c.value();
  c.add(5);  // wraps
  EXPECT_EQ(c.value(), 4u);
  // Snapshot diffing survives the wrap: unsigned subtraction recovers the
  // true delta.
  EXPECT_EQ(c.value() - before, 5u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, GaugeHoldsSignedValues) {
  gauge g;
  g.set(-3);
  EXPECT_EQ(g.value(), -3);
  g.add(10);
  EXPECT_EQ(g.value(), 7);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

// --- registry ----------------------------------------------------------------

TEST(ObsMetrics, RegistryReturnsSameInstrumentForSameName) {
  auto& a = registry::instance().counter("test_obs_registry_identity_total");
  auto& b = registry::instance().counter("test_obs_registry_identity_total");
  EXPECT_EQ(&a, &b);
  a.add(2);
  b.add(3);
  const auto snap = registry::instance().snapshot();
  const auto* c = snap.find_counter("test_obs_registry_identity_total");
  ASSERT_NE(c, nullptr);
  EXPECT_GE(c->value, 5u);  // >= : other tests in this binary never touch it
}

TEST(ObsMetrics, RegistryRejectsInvalidPromNames) {
  EXPECT_THROW(registry::instance().counter("bad-name"), spechd::logic_error);
  EXPECT_THROW(registry::instance().counter("1leading_digit"), spechd::logic_error);
  EXPECT_THROW(registry::instance().counter(""), spechd::logic_error);
  EXPECT_THROW(registry::instance().histogram("has space"), spechd::logic_error);
}

TEST(ObsMetrics, SnapshotFindMissingReturnsNull) {
  const auto snap = registry::instance().snapshot();
  EXPECT_EQ(snap.find_counter("test_obs_never_registered_total"), nullptr);
  EXPECT_EQ(snap.find_histogram("test_obs_never_registered_ns"), nullptr);
}

// --- prometheus rendering ----------------------------------------------------

TEST(ObsMetrics, PromRenderingFollowsExpositionGrammar) {
  registry::instance().counter("test_obs_prom_counter_total").add(7);
  registry::instance().gauge("test_obs_prom_gauge").set(-2);
  auto& h = registry::instance().histogram("test_obs_prom_hist_ns", "ns");
  h.record(10);
  h.record(100000);
  const std::string text = render_prom(registry::instance().snapshot());

  // Every line is either a comment or `name[{le="..."}] value`.
  std::istringstream lines(text);
  std::string line;
  bool saw_bucket = false;
  bool saw_inf = false;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE ", 0), 0u) << line;
      continue;
    }
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string series = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    std::string name = series;
    const auto brace = series.find('{');
    if (brace != std::string::npos) {
      name = series.substr(0, brace);
      EXPECT_EQ(series.find("{le=\""), brace) << line;
      EXPECT_EQ(series.back(), '}') << line;
      saw_bucket = true;
      if (series.find("+Inf") != std::string::npos) saw_inf = true;
    }
    ASSERT_FALSE(name.empty());
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_' ||
                name[0] == ':')
        << line;
    for (const char c : name) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':')
          << line;
    }
  }
  EXPECT_TRUE(saw_bucket);
  EXPECT_TRUE(saw_inf);
  // The histogram's required series are all present.
  EXPECT_NE(text.find("test_obs_prom_hist_ns_sum "), std::string::npos);
  EXPECT_NE(text.find("test_obs_prom_hist_ns_count "), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_obs_prom_hist_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_obs_prom_counter_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_obs_prom_gauge -2"), std::string::npos);
}

// --- trace spans -------------------------------------------------------------

TEST(ObsTrace, SpanRecordsIntoHistogramAndAmbientTrace) {
  set_armed(true);
  histogram hist;
  request_trace trace;
  {
    trace_scope scope(trace);
    trace_span span(hist, stage::route);
    // Burn enough cycles that the span cannot round down to 0 ns.
    volatile int sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + 1;
    const auto ns = span.finish();
    EXPECT_GT(ns, 0u);
    // finish() is idempotent: the destructor must not double-record.
  }
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.begin()->st, stage::route);
  EXPECT_GT(trace.begin()->ns, 0u);
  const auto sample = sample_of(hist);
  EXPECT_EQ(sample.count, 1u);
}

TEST(ObsTrace, DisarmedSpanIsANoop) {
  set_armed(false);
  histogram hist;
  request_trace trace;
  {
    trace_scope scope(trace);
    trace_span span(hist, stage::route);
    EXPECT_EQ(span.finish(), 0u);
  }
  set_armed(true);
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(sample_of(hist).count, 0u);
}

TEST(ObsTrace, TraceScopesNestAndRestore) {
  EXPECT_EQ(active_trace(), nullptr);
  request_trace outer;
  {
    trace_scope outer_scope(outer);
    EXPECT_EQ(active_trace(), &outer);
    request_trace inner;
    {
      trace_scope inner_scope(inner);
      EXPECT_EQ(active_trace(), &inner);
    }
    EXPECT_EQ(active_trace(), &outer);
  }
  EXPECT_EQ(active_trace(), nullptr);
}

TEST(ObsTrace, TraceDropsPastCapacityAndCounts) {
  request_trace trace;
  for (std::size_t i = 0; i < request_trace::k_capacity + 3; ++i) {
    trace.add(stage::route, i);
  }
  EXPECT_EQ(trace.size(), request_trace::k_capacity);
  EXPECT_EQ(trace.dropped(), 3u);
}

// --- slow-request ring -------------------------------------------------------

TEST(ObsTrace, SlowRingCapturesOverThresholdOnly) {
  auto& ring = slow_ring::instance();
  ring.clear();
  ring.configure(1000, 0);  // 1 us threshold, no sampling
  request_trace trace;
  trace.add(stage::route, 2000);
  ring.offer("fast", 500, trace);     // below threshold: dropped
  ring.offer("slow", 2000, trace);    // over: captured
  const auto dump = ring.dump();
  ASSERT_EQ(dump.size(), 1u);
  EXPECT_EQ(dump[0].kind, "slow");
  EXPECT_EQ(dump[0].total_ns, 2000u);
  ASSERT_EQ(dump[0].stages.size(), 1u);
  EXPECT_EQ(dump[0].stages[0].st, stage::route);
  ring.clear();
  ring.configure(10'000'000, 0);  // restore defaults
}

TEST(ObsTrace, SlowRingSamplingCapturesHealthyRequests) {
  auto& ring = slow_ring::instance();
  ring.clear();
  ring.configure(UINT64_MAX, 1);  // sample every offer, threshold unreachable
  request_trace trace;
  for (int i = 0; i < 5; ++i) ring.offer("sampled", 10, trace);
  EXPECT_EQ(ring.dump().size(), 5u);
  ring.clear();
  ring.configure(10'000'000, 0);
}

TEST(ObsTrace, SlowRingOverwritesOldestPastCapacity) {
  auto& ring = slow_ring::instance();
  ring.clear();
  ring.configure(0, 0);  // capture everything
  request_trace trace;
  const std::size_t n = slow_ring::k_capacity + 10;
  for (std::size_t i = 0; i < n; ++i) {
    ring.offer(i < 10 ? "old" : "new", i + 1, trace);
  }
  const auto dump = ring.dump();
  ASSERT_EQ(dump.size(), slow_ring::k_capacity);
  // The 10 oldest were overwritten; survivors are in offer order.
  for (const auto& s : dump) EXPECT_EQ(s.kind, "new");
  for (std::size_t i = 1; i < dump.size(); ++i) {
    EXPECT_GT(dump[i].seq, dump[i - 1].seq);
  }
  ring.clear();
  ring.configure(10'000'000, 0);
}

}  // namespace
}  // namespace spechd::obs
