// Flight recorder, crash-dump format, and watchdog (src/obs/flight.*,
// src/obs/watchdog.*): events must come back from snapshot() in seq order
// with their payloads intact, wraparound must keep the newest events,
// recording must be multi-thread safe and disarmable; a dump written by
// write_crash_dump_now must round-trip through the parser (metrics, shard
// status table, event tail) and the parser must reject corruption rather
// than crash; the watchdog must flag a silent component within 2x the
// configured deadline, un-flag it when it pulses again, and fail safe
// (no-op handles) when the slot table is full. The CrashDrill suite
// drives the real binary: a failpoint-injected abort mid-journaled-ingest
// must leave a parseable .sphcrash whose tail matches what recovery then
// replays from the journal.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/watchdog.hpp"
#include "util/error.hpp"

namespace spechd::obs {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("spechd_flight_test_" + std::to_string(::getpid()) + "_" + name))
      .string();
}

// Every test runs armed against a fresh ring; armed is the process-wide
// default, so leaving it on cannot perturb later suites.
void fresh_recorder() {
  set_armed(true);
  flight_recorder::instance().reset();
}

TEST(FlightRecorder, RecordAndSnapshotInSeqOrder) {
  fresh_recorder();
  const std::uint64_t base = flight_recorder::instance().total_recorded();
  EXPECT_EQ(base, 0u);

  record_event(event_kind::ingest_batch, 17, 3, 42);
  record_event(event_kind::view_publish, 5, 3);
  record_event(event_kind::journal_append, 100, 4096);

  EXPECT_EQ(flight_recorder::instance().total_recorded(), 3u);
  const auto events = flight_recorder::instance().snapshot();
  ASSERT_EQ(events.size(), 3u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
  EXPECT_EQ(events[0].kind, static_cast<std::uint8_t>(event_kind::ingest_batch));
  EXPECT_EQ(events[0].arg0, 17u);
  EXPECT_EQ(events[0].arg1, 3u);
  EXPECT_EQ(events[0].request_id, 42u);
  EXPECT_GT(events[0].steady_ns, 0u);
  EXPECT_GT(events[0].wall_ns, 0u);
  EXPECT_NE(events[0].thread_id, 0u);
  EXPECT_EQ(events[2].kind, static_cast<std::uint8_t>(event_kind::journal_append));
  EXPECT_EQ(events[2].arg1, 4096u);
}

TEST(FlightRecorder, DisarmedRecordsNothing) {
  fresh_recorder();
  set_armed(false);
  record_event(event_kind::ingest_batch, 1, 1);
  record_event(event_kind::view_publish, 2, 2);
  set_armed(true);
  EXPECT_EQ(flight_recorder::instance().total_recorded(), 0u);
  EXPECT_TRUE(flight_recorder::instance().snapshot().empty());
}

TEST(FlightRecorder, WraparoundKeepsTheNewestEvents) {
  fresh_recorder();
  // Single thread -> one ring shard of k_shard_events slots; overfill it.
  const std::uint64_t total = flight_recorder::k_shard_events + 50;
  for (std::uint64_t i = 0; i < total; ++i) {
    record_event(event_kind::ingest_batch, i, 0);
  }
  EXPECT_EQ(flight_recorder::instance().total_recorded(), total);
  const auto events = flight_recorder::instance().snapshot();
  ASSERT_EQ(events.size(), flight_recorder::k_shard_events);
  // The survivors are exactly the newest k_shard_events records.
  std::uint64_t max_seq = 0;
  std::uint64_t min_seq = ~0ULL;
  for (const auto& e : events) {
    max_seq = std::max(max_seq, e.seq);
    min_seq = std::min(min_seq, e.seq);
  }
  EXPECT_EQ(max_seq, total);
  EXPECT_EQ(min_seq, total - flight_recorder::k_shard_events + 1);
}

TEST(FlightRecorder, MultiThreadedRecordingKeepsEveryEvent) {
  fresh_recorder();
  constexpr std::size_t k_threads = 4;
  constexpr std::size_t k_per_thread = 50;  // fits every shard's ring
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < k_threads; ++t) {
    threads.emplace_back([t] {
      for (std::size_t i = 0; i < k_per_thread; ++i) {
        record_event(event_kind::view_publish, i, t);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(flight_recorder::instance().total_recorded(), k_threads * k_per_thread);
  const auto events = flight_recorder::instance().snapshot();
  ASSERT_EQ(events.size(), k_threads * k_per_thread);
  // Seqs are unique and cover 1..N (no event lost, none duplicated).
  std::vector<bool> seen(events.size() + 1, false);
  for (const auto& e : events) {
    ASSERT_GE(e.seq, 1u);
    ASSERT_LE(e.seq, events.size());
    EXPECT_FALSE(seen[e.seq]) << "duplicate seq " << e.seq;
    seen[e.seq] = true;
  }
}

TEST(FlightRecorder, EventKindNamesCoverEveryKind) {
  for (std::uint8_t k = 1; k <= k_event_kind_max; ++k) {
    const char* name = event_kind_name(static_cast<event_kind>(k));
    EXPECT_STRNE(name, "unknown") << "kind " << int(k) << " has no name";
    EXPECT_STRNE(name, "none") << "kind " << int(k) << " maps to none";
  }
  EXPECT_STREQ(event_kind_name(event_kind::none), "none");
  EXPECT_STREQ(event_kind_name(static_cast<event_kind>(200)), "unknown");
}

TEST(CrashDump, WriteNowRoundTripsThroughTheParser) {
  fresh_recorder();
  record_event(event_kind::ingest_batch, 11, 0);
  record_event(event_kind::journal_append, 12, 640);
  record_event(event_kind::journal_fsync, 12, 1);

  set_status_shard_count(3);
  for (std::size_t s = 0; s < 3; ++s) {
    auto& st = status_shard(s);
    st.health.store(0, std::memory_order_relaxed);
    st.generation.store(s + 1, std::memory_order_relaxed);
    st.journal_bytes.store(100 * (s + 1), std::memory_order_relaxed);
    st.journal_records.store(10 * (s + 1), std::memory_order_relaxed);
    st.queue_depth.store(s, std::memory_order_relaxed);
  }
  auto& marker = registry::instance().counter("spechd_test_crash_marker_total");
  marker.add(7);

  const std::string path = temp_path("roundtrip.sphcrash");
  ASSERT_TRUE(write_crash_dump_now(path));

  crash_dump dump;
  ASSERT_TRUE(read_crash_dump_file(path, dump));
  EXPECT_EQ(dump.version, 1u);
  EXPECT_EQ(dump.signo, 0);  // on-demand dump, not a fatal signal
  EXPECT_EQ(dump.pid, static_cast<std::uint32_t>(::getpid()));
  EXPECT_GT(dump.wall_ns, 0u);

  bool marker_found = false;
  for (const auto& c : dump.counters) {
    if (c.name == "spechd_test_crash_marker_total") {
      marker_found = true;
      EXPECT_GE(c.value, 7u);
    }
  }
  EXPECT_TRUE(marker_found) << "counter registered before the dump is missing";

  ASSERT_EQ(dump.shards.size(), 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(dump.shards[s].generation, s + 1);
    EXPECT_EQ(dump.shards[s].journal_bytes, 100 * (s + 1));
    EXPECT_EQ(dump.shards[s].journal_records, 10 * (s + 1));
    EXPECT_EQ(dump.shards[s].queue_depth, s);
  }

  // The event tail survives byte-for-byte (minus struct padding).
  const auto live = flight_recorder::instance().snapshot();
  ASSERT_EQ(dump.events.size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(dump.events[i], live[i]) << "event " << i << " mangled in transit";
  }

  set_status_shard_count(0);
  std::remove(path.c_str());
}

TEST(CrashDump, ParserRejectsCorruptInput) {
  fresh_recorder();
  record_event(event_kind::ingest_batch, 1, 2);
  const std::string path = temp_path("corrupt.sphcrash");
  ASSERT_TRUE(write_crash_dump_now(path));
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  std::remove(path.c_str());
  ASSERT_GT(bytes.size(), 32u);

  crash_dump dump;
  ASSERT_TRUE(parse_crash_dump(bytes, dump));  // baseline: the bytes are good

  EXPECT_FALSE(parse_crash_dump("", dump));
  EXPECT_FALSE(parse_crash_dump("this is not a crash dump", dump));

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_FALSE(parse_crash_dump(bad_magic, dump));

  std::string bad_version = bytes;
  bad_version[4] = static_cast<char>(0xEE);
  EXPECT_FALSE(parse_crash_dump(bad_version, dump));

  // Every truncation point must fail cleanly (count guards + final
  // position check), never read out of bounds or return a partial "ok".
  for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2, std::size_t{21},
                          std::size_t{5}}) {
    EXPECT_FALSE(parse_crash_dump(bytes.substr(0, cut), dump))
        << "truncation at " << cut << " parsed";
  }

  // Trailing garbage must fail too (pos == size check).
  EXPECT_FALSE(parse_crash_dump(bytes + "x", dump));
}

TEST(CrashDump, MissingFileThrowsIoError) {
  crash_dump dump;
  EXPECT_THROW(read_crash_dump_file("/nonexistent/dir/x.sphcrash", dump),
               spechd::io_error);
}

// Runs the sweep deterministically via check_now(): start() then stop()
// leaves the configured deadline in place without a live poll thread.
TEST(Watchdog, StallIsFlaggedAndRecoversOnPulse) {
  fresh_recorder();
  auto& wd = watchdog::instance();
  wd.start({.deadline = std::chrono::milliseconds(40)});
  wd.stop();

  auto beat = wd.register_component("test/stall-comp");
  ASSERT_TRUE(beat.valid());
  beat.pulse();
  EXPECT_EQ(wd.check_now(), 0u);

  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_GE(wd.check_now(), 1u);
  bool found_stalled = false;
  for (const auto& c : wd.components()) {
    if (c.name == "test/stall-comp") {
      found_stalled = true;
      EXPECT_TRUE(c.stalled);
      EXPECT_GE(c.silent_ms, 40u);
    }
  }
  EXPECT_TRUE(found_stalled);

  beat.pulse();
  EXPECT_EQ(wd.check_now(), 0u);
  for (const auto& c : wd.components()) {
    if (c.name == "test/stall-comp") EXPECT_FALSE(c.stalled);
  }

  // The verdicts left a flight-event trail.
  bool saw_stall = false;
  bool saw_recover = false;
  for (const auto& e : flight_recorder::instance().snapshot()) {
    if (e.kind == static_cast<std::uint8_t>(event_kind::watchdog_stall)) saw_stall = true;
    if (e.kind == static_cast<std::uint8_t>(event_kind::watchdog_recover)) saw_recover = true;
  }
  EXPECT_TRUE(saw_stall);
  EXPECT_TRUE(saw_recover);
  beat.retire();
}

// Acceptance bar: with the poll thread live, an injected stall is flagged
// within 2x the configured deadline (detection lands at deadline + one
// poll = 1.25x with the default poll cadence).
TEST(Watchdog, LiveThreadFlagsStallWithinTwiceTheDeadline) {
  auto& wd = watchdog::instance();
  const auto deadline = std::chrono::milliseconds(400);
  auto beat = wd.register_component("test/live-stall");
  ASSERT_TRUE(beat.valid());
  beat.pulse();
  const auto t0 = std::chrono::steady_clock::now();
  wd.start({.deadline = deadline});
  ASSERT_TRUE(wd.running());

  while (wd.stalled_components() == 0 &&
         std::chrono::steady_clock::now() - t0 < 4 * deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  wd.stop();
  bool ours_stalled = false;
  for (const auto& c : wd.components()) {
    if (c.name == "test/live-stall" && c.stalled) ours_stalled = true;
  }
  beat.retire();
  EXPECT_TRUE(ours_stalled) << "the poll thread never flagged the component";
  EXPECT_LE(elapsed, 2 * deadline)
      << "stall took "
      << std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count()
      << " ms to flag";
  // Retired: a fresh sweep must not count the freed slot.
  EXPECT_EQ(wd.check_now(), 0u);
}

TEST(Watchdog, RetiredComponentIsNeverFlagged) {
  auto& wd = watchdog::instance();
  wd.start({.deadline = std::chrono::milliseconds(20)});
  wd.stop();
  auto beat = wd.register_component("test/retired");
  ASSERT_TRUE(beat.valid());
  beat.retire();
  EXPECT_FALSE(beat.valid());
  beat.retire();  // idempotent
  beat.pulse();   // no-op on an empty handle
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_EQ(wd.check_now(), 0u);
  for (const auto& c : wd.components()) EXPECT_NE(c.name, "test/retired");
}

TEST(Watchdog, LongNamesTruncateAtCap) {
  auto& wd = watchdog::instance();
  const std::string longname(watchdog::k_name_cap + 20, 'x');
  auto beat = wd.register_component(longname);
  ASSERT_TRUE(beat.valid());
  bool found = false;
  for (const auto& c : wd.components()) {
    if (c.name == std::string(watchdog::k_name_cap, 'x')) found = true;
  }
  EXPECT_TRUE(found);
  beat.retire();
}

TEST(Watchdog, FullTableFailsSafe) {
  auto& wd = watchdog::instance();
  const std::size_t live_before = wd.components().size();
  std::vector<watchdog::handle> handles;
  // Fill every free slot, then one more: the overflow handle must come
  // back empty (pulses no-op) instead of aliasing a live slot.
  for (std::size_t i = live_before; i < watchdog::k_max_components; ++i) {
    auto h = wd.register_component("test/filler-" + std::to_string(i));
    ASSERT_TRUE(h.valid()) << "slot " << i << " should have been free";
    handles.push_back(h);
  }
  auto overflow = wd.register_component("test/overflow");
  EXPECT_FALSE(overflow.valid());
  overflow.pulse();  // must not crash
  EXPECT_EQ(wd.components().size(), watchdog::k_max_components);

  for (auto& h : handles) h.retire();
  EXPECT_EQ(wd.components().size(), live_before);

  // Retiring freed the slots for real: registration works again.
  auto again = wd.register_component("test/after-drain");
  EXPECT_TRUE(again.valid());
  again.retire();
}

}  // namespace
}  // namespace spechd::obs

// --- crash drill: the real binary, a real abort, a real .sphcrash ------------
//
// Not part of the Watchdog/CrashDump suites: this fixture aborts a child
// process (via the `abort` failpoint action) and is excluded from the
// sanitizer job's suite list, where SIGABRT is noisy by design.
#ifdef SPECHD_CLI_PATH

namespace {

struct cli_result {
  int exit_code = -1;   // -1: killed by a signal (see `signaled`)
  bool signaled = false;
  std::string output;
};

cli_result run_spechd(const std::string& args) {
  const std::string command = std::string(SPECHD_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  cli_result result;
  if (!pipe) return result;
  char buffer[4096];
  while (std::fgets(buffer, sizeof(buffer), pipe)) result.output += buffer;
  const int status = pclose(pipe);
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.signaled = true;
  }
  return result;
}

std::string drill_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("spechd_crash_drill_" + std::to_string(::getpid()) + "_" + name))
      .string();
}

TEST(CrashDrill, AbortMidJournaledIngestLeavesAParseableDump) {
  namespace obs = spechd::obs;
  const std::string mgf = drill_path("data.mgf");
  const std::string dir = drill_path("jdir");
  const std::string crash = drill_path("drill.sphcrash");
  std::filesystem::remove_all(dir);

  const auto synth = run_spechd("synth -o " + mgf + " --peptides 64 --seed 7");
  ASSERT_EQ(synth.exit_code, 0) << synth.output;

  // Abort inside the journal-append write path once a few records are
  // durably down: the process dies mid-journaled-ingest, the SIGABRT
  // handler writes the pre-opened .sphcrash on the way out.
  const auto serve = run_spechd(
      "serve --shards 2 --batch 4 --journal-dir " + dir + " --crash-dump " +
      crash + " --failpoints journal.append.write=abort@after10 --ingest " + mgf);
  EXPECT_TRUE(serve.signaled || serve.exit_code != 0)
      << "serve survived an armed abort failpoint: " << serve.output;

  obs::crash_dump dump;
  ASSERT_TRUE(obs::read_crash_dump_file(crash, dump)) << "dump did not parse";
  EXPECT_EQ(dump.signo, SIGABRT);
  ASSERT_FALSE(dump.events.empty());

  // The tail must show the journaled-ingest path in flight: appends
  // recorded before the abort, and the crash event itself as the newest
  // record.
  std::uint64_t last_appended_records = 0;
  bool saw_crash_event = false;
  for (const auto& e : dump.events) {
    if (e.kind == static_cast<std::uint8_t>(obs::event_kind::journal_append)) {
      last_appended_records = std::max(last_appended_records, e.arg0);
    }
    if (e.kind == static_cast<std::uint8_t>(obs::event_kind::crash)) {
      saw_crash_event = true;
      // Surviving writer threads may still record for a few microseconds
      // while the handler serialises, so the crash event is near — not
      // necessarily at — the end of the tail.
      EXPECT_EQ(e.arg0, static_cast<std::uint64_t>(SIGABRT));
    }
  }
  EXPECT_TRUE(saw_crash_event);
  EXPECT_GT(last_appended_records, 0u) << "no journal_append events in the tail";

  // The shard status table froze the per-shard journal positions at the
  // moment of death; everything it counted was written before the abort
  // fired, so recovery must replay at least that many records. (The event
  // tail can momentarily lead the status mirror — a writer records its
  // append event a few instructions before update_status() — so the two
  // are held against recovery below, not against each other.)
  std::uint64_t status_records = 0;
  for (const auto& s : dump.shards) status_records += s.journal_records;
  EXPECT_GT(status_records, 0u);

  const auto recover = run_spechd("recover --journal-dir " + dir);
  EXPECT_EQ(recover.exit_code, 0) << recover.output;
  EXPECT_NE(recover.output.find("recovered"), std::string::npos);
  EXPECT_NE(recover.output.find("replaying shard"), std::string::npos);

  // Sum the per-generation progress lines ("... generation G: N records")
  // and hold them against the dump: the journal's surviving records cover
  // every append the dying process managed to count.
  std::uint64_t replayed = 0;
  std::istringstream lines(recover.output);
  std::string line;
  while (std::getline(lines, line)) {
    const auto gen = line.find("generation ");
    const auto colon = line.find(": ", gen == std::string::npos ? 0 : gen);
    if (gen == std::string::npos || colon == std::string::npos) continue;
    if (line.find(" records", colon) == std::string::npos) continue;
    replayed += std::strtoull(line.c_str() + colon + 2, nullptr, 10);
  }
  EXPECT_GE(replayed, status_records)
      << "recovery replayed fewer records than the dump's status table:\n"
      << recover.output;
  EXPECT_GE(replayed, last_appended_records)
      << "recovery replayed fewer records than the dump's event tail:\n"
      << recover.output;

  // `spechd doctor` renders the same dump offline.
  const auto doctor = run_spechd("doctor " + crash);
  EXPECT_EQ(doctor.exit_code, 0) << doctor.output;
  EXPECT_NE(doctor.output.find("signal"), std::string::npos);
  EXPECT_NE(doctor.output.find("journal_append"), std::string::npos);
  EXPECT_NE(doctor.output.find("crash"), std::string::npos);

  std::remove(mgf.c_str());
  std::remove(crash.c_str());
  std::filesystem::remove_all(dir);
}

TEST(CrashDrill, DoctorRejectsCorruptDumpWithDiagnostic) {
  const std::string bogus = drill_path("bogus.sphcrash");
  std::ofstream(bogus, std::ios::binary) << "definitely not a crash dump";
  const auto r = run_spechd("doctor " + bogus);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("not a parseable crash dump"), std::string::npos);
  std::remove(bogus.c_str());

  const auto missing = run_spechd("doctor /nonexistent/x.sphcrash");
  EXPECT_EQ(missing.exit_code, 2);
}

}  // namespace

#endif  // SPECHD_CLI_PATH
