// Durability subsystem: journal framing, torn-tail tolerance, compaction
// rotation, background maintenance, and the golden recovery guarantee —
// snapshot + journal replay (including a torn final record and a
// journaled maintenance recluster) is bit-identical to the uninterrupted
// run, at shard/thread counts {1, 4}.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/incremental.hpp"
#include "ms/synthetic.hpp"
#include "serve/journal.hpp"
#include "serve/recovery.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace spechd::serve {
namespace {

std::vector<ms::spectrum> sample_stream(std::size_t peptides = 32, std::uint64_t seed = 77) {
  ms::synthetic_config config;
  config.peptide_count = peptides;
  config.spectra_per_peptide_mean = 4.0;
  config.noise_peaks_per_spectrum = 20.0;
  config.seed = seed;
  return ms::generate_dataset(config).spectra;
}

core::spechd_config small_config() {
  core::spechd_config config;
  config.encoder.dim = 1024;
  config.threads = 1;
  return config;
}

serve_config make_serve_config(std::size_t shards, std::size_t threads = 1) {
  serve_config sc;
  sc.pipeline = small_config();
  sc.pipeline.threads = threads;
  sc.shards = shards;
  sc.queue_capacity = 4;
  return sc;
}

/// Unique journal directory wiped on destruction.
struct temp_dir {
  std::string path;
  explicit temp_dir(const std::string& name)
      : path((std::filesystem::temp_directory_path() /
              ("spechd_jrnl_" + name + "_" + std::to_string(::getpid()))).string()) {
    std::filesystem::remove_all(path);
  }
  ~temp_dir() { std::filesystem::remove_all(path); }
};

void ingest_in_batches(clustering_service& service, const std::vector<ms::spectrum>& stream,
                       std::size_t begin, std::size_t end, std::size_t batch = 17) {
  for (std::size_t i = begin; i < end; i += batch) {
    const auto stop = std::min(i + batch, end);
    service.ingest({stream.begin() + static_cast<std::ptrdiff_t>(i),
                    stream.begin() + static_cast<std::ptrdiff_t>(stop)});
  }
}

void chop_tail(const std::string& path, std::uint64_t bytes) {
  const auto size = std::filesystem::file_size(path);
  ASSERT_GT(size, bytes);
  std::filesystem::resize_file(path, size - bytes);
}

// --- framing -----------------------------------------------------------------

TEST(Journal, RecordsRoundTripThroughWriterAndScanner) {
  temp_dir dir("roundtrip");
  std::filesystem::create_directories(dir.path);
  const auto stream = sample_stream(6, 3);

  journal_file_header header;
  header.shard_index = 2;
  header.shard_count = 4;
  header.generation = 7;
  header.identity.dim = 1024;
  header.identity.encoder_seed = 42;

  journal_head head;
  head.path = journal_shard_path(dir.path, 2, 7);
  head.next_seq = 5;  // e.g. continuing after a rotation

  journal_config config;
  config.fsync = false;
  {
    journal_writer writer(head, header, config);
    writer.append_batch({stream.begin(), stream.begin() + 3});
    writer.append_recluster();
    writer.append_batch({stream.begin() + 3, stream.end()});
    EXPECT_EQ(writer.records(), 3U);
    EXPECT_EQ(writer.generation(), 7U);
  }

  const auto scan = read_journal_file(head.path);
  EXPECT_EQ(scan.header, header);
  EXPECT_FALSE(scan.torn);
  ASSERT_EQ(scan.records.size(), 3U);
  EXPECT_EQ(scan.records[0].type, journal_record::kind::ingest_batch);
  EXPECT_EQ(scan.records[0].seq, 5U);
  EXPECT_EQ(scan.records[1].type, journal_record::kind::recluster);
  EXPECT_EQ(scan.records[1].seq, 6U);
  EXPECT_EQ(scan.records[2].seq, 7U);
  EXPECT_EQ(scan.valid_bytes, std::filesystem::file_size(head.path));

  // Every spectrum field the pipeline consumes survives byte-for-byte.
  ASSERT_EQ(scan.records[0].batch.size(), 3U);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& original = stream[i];
    const auto& replayed = scan.records[0].batch[i];
    EXPECT_EQ(replayed.title, original.title);
    EXPECT_EQ(replayed.scan, original.scan);
    EXPECT_EQ(replayed.precursor_mz, original.precursor_mz);
    EXPECT_EQ(replayed.precursor_charge, original.precursor_charge);
    EXPECT_EQ(replayed.retention_time, original.retention_time);
    EXPECT_EQ(replayed.label, original.label);
    ASSERT_EQ(replayed.peaks.size(), original.peaks.size());
    EXPECT_EQ(replayed.peaks, original.peaks);
  }
}

TEST(Journal, TornTailIsDetectedAndTruncatedToLastCompleteRecord) {
  temp_dir dir("torn");
  std::filesystem::create_directories(dir.path);
  const auto stream = sample_stream(6, 5);

  journal_file_header header;
  header.shard_count = 1;
  journal_head head;
  head.path = journal_shard_path(dir.path, 0, 0);
  journal_config config;
  config.fsync = false;

  std::uint64_t one_record = 0;
  std::uint64_t two_records = 0;
  {
    journal_writer writer(head, header, config);
    writer.append_batch({stream.begin(), stream.begin() + 4});
    one_record = writer.bytes();
    writer.append_batch({stream.begin() + 4, stream.begin() + 8});
    two_records = writer.bytes();
    writer.append_batch({stream.begin() + 8, stream.end()});
  }

  // Chop at several depths: into the final record (mid-payload, all but
  // one byte) must keep the first two records; past it into the second
  // record's frame must truncate to the first record only.
  const auto full = std::filesystem::file_size(head.path);
  const auto expect_cut = [&](std::uint64_t cut, std::size_t records,
                              std::uint64_t valid) {
    std::filesystem::copy_file(head.path, head.path + ".cut",
                               std::filesystem::copy_options::overwrite_existing);
    chop_tail(head.path + ".cut", cut);
    const auto scan = read_journal_file(head.path + ".cut");
    EXPECT_TRUE(scan.torn) << "cut " << cut;
    EXPECT_EQ(scan.records.size(), records) << "cut " << cut;
    EXPECT_EQ(scan.valid_bytes, valid) << "cut " << cut;
  };
  expect_cut(1, 2, two_records);
  expect_cut(4, 2, two_records);
  expect_cut(full - two_records - 1, 2, two_records);
  expect_cut(full - two_records + 3, 1, one_record);  // 3 bytes into record 2's tail
  expect_cut(full - one_record - 1, 1, one_record);

  // A flipped byte inside a record is indistinguishable from a torn tail
  // at that record: scanning stops there.
  {
    std::fstream f(head.path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(two_records + 12));
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(static_cast<std::streamoff>(two_records + 12));
    byte = static_cast<char>(byte ^ 0x10);
    f.write(&byte, 1);
  }
  const auto scan = read_journal_file(head.path);
  EXPECT_TRUE(scan.torn);
  EXPECT_EQ(scan.records.size(), 2U);
}

TEST(Journal, CorruptHeaderIsRejected) {
  temp_dir dir("badheader");
  std::filesystem::create_directories(dir.path);
  const auto path = journal_shard_path(dir.path, 0, 0);
  {
    journal_config config;
    config.fsync = false;
    journal_writer writer(journal_head{path}, journal_file_header{}, config);
  }
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(0);
    f.write("XX", 2);
  }
  EXPECT_THROW(read_journal_file(path), parse_error);
  EXPECT_THROW(read_journal_header_file(path), parse_error);
  EXPECT_THROW(read_journal_file(dir.path + "/nonexistent.sphjrnl"), io_error);
}

TEST(Journal, DirScanFindsGenerationsAndIgnoresForeignFiles) {
  temp_dir dir("scan");
  std::filesystem::create_directories(dir.path);
  const auto touch = [&](const std::string& name) {
    std::ofstream(std::filesystem::path(dir.path) / name) << "x";
  };
  EXPECT_TRUE(scan_journal_dir(dir.path).empty());
  touch("shard-0-0.sphjrnl");
  touch("shard-1-0.sphjrnl");
  touch("shard-0-3.sphjrnl");
  touch("base-3.sphsnap");
  touch("base-3.sphsnap.tmp");  // crash leftover: ignored
  touch("notes.txt");           // foreign: ignored
  const auto state = scan_journal_dir(dir.path);
  EXPECT_EQ(state.max_generation, 3U);
  ASSERT_TRUE(state.snapshot_generation.has_value());
  EXPECT_EQ(*state.snapshot_generation, 3U);
  EXPECT_EQ(state.journals.size(), 3U);

  remove_stale_generations(dir.path, 3);
  const auto pruned = scan_journal_dir(dir.path);
  EXPECT_EQ(pruned.journals.size(), 1U);  // only shard-0-3 survives
  EXPECT_EQ(pruned.journals[0].generation, 3U);
  EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(dir.path) / "notes.txt"));
}

// --- golden recovery ---------------------------------------------------------

TEST(JournalRecovery, RecoveredStateIsBitIdenticalToUninterruptedRun) {
  const auto stream = sample_stream();
  const std::size_t split = stream.size() / 2;

  for (const std::size_t threads : {1UL, 4UL}) {
    for (const std::size_t shards : {1UL, 4UL}) {
      SCOPED_TRACE(std::to_string(shards) + " shards, " + std::to_string(threads) +
                   " threads");

      // Uninterrupted reference (no journal): ingest, maintenance
      // recluster mid-stream, ingest the rest.
      clustering_service reference(make_serve_config(shards, threads));
      ingest_in_batches(reference, stream, 0, split);
      reference.drain();
      reference.run_maintenance_now();
      ingest_in_batches(reference, stream, split, stream.size());
      const auto golden = canonical_state(reference.export_states());

      // Journaled run with the same schedule, "crashed" (destroyed) at
      // the end; recovery must land on exactly the same bytes.
      temp_dir dir("golden_" + std::to_string(shards) + "_" + std::to_string(threads));
      auto sc = make_serve_config(shards, threads);
      sc.journal.dir = dir.path;
      sc.journal.fsync = false;  // page-cache durability is enough in tests
      {
        clustering_service journaled(sc);
        EXPECT_FALSE(journaled.recovery().recovered);
        ingest_in_batches(journaled, stream, 0, split);
        journaled.drain();
        EXPECT_EQ(journaled.run_maintenance_now(), shards);
        ingest_in_batches(journaled, stream, split, stream.size());
        journaled.drain();
        EXPECT_EQ(canonical_state(journaled.export_states()), golden);
      }
      clustering_service recovered(sc);
      EXPECT_TRUE(recovered.recovery().recovered);
      EXPECT_GT(recovered.recovery().batches_replayed, 0U);
      // Every shard that actually had dirty buckets journaled a recluster.
      EXPECT_GT(recovered.recovery().reclusters_replayed, 0U);
      EXPECT_LE(recovered.recovery().reclusters_replayed, shards);
      EXPECT_EQ(recovered.recovery().torn_bytes, 0U);
      EXPECT_EQ(canonical_state(recovered.export_states()), golden);
    }
  }
}

TEST(JournalRecovery, TornFinalRecordIsDroppedAndPriorStateRecovered) {
  const auto stream = sample_stream();
  const std::size_t split = (stream.size() * 3) / 4;

  for (const std::size_t shards : {1UL, 4UL}) {
    SCOPED_TRACE(std::to_string(shards) + " shards");
    temp_dir dir("tornrec_" + std::to_string(shards));
    auto sc = make_serve_config(shards);
    sc.journal.dir = dir.path;
    sc.journal.fsync = false;

    std::string golden_prefix;
    std::vector<std::uint64_t> records_before(shards, 0);
    {
      clustering_service journaled(sc);
      ingest_in_batches(journaled, stream, 0, split);
      journaled.drain();
      golden_prefix = canonical_state(journaled.export_states());
      for (std::size_t s = 0; s < shards; ++s) {
        records_before[s] =
            read_journal_file(journal_shard_path(dir.path, s, 0)).records.size();
      }
      // One more ingest call: exactly one further journal record lands on
      // every shard that receives part of the batch.
      journaled.ingest({stream.begin() + static_cast<std::ptrdiff_t>(split), stream.end()});
      journaled.drain();
      EXPECT_NE(canonical_state(journaled.export_states()), golden_prefix);
    }

    // Simulate a torn write of that final record on every shard journal
    // that received one: chop a few bytes so its frame is incomplete.
    // Shards untouched by the final batch are left alone (their journal
    // ends with prefix records the recovery must keep).
    std::size_t chopped = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      const auto path = journal_shard_path(dir.path, s, 0);
      const auto before = read_journal_file(path);
      ASSERT_FALSE(before.torn);
      if (before.records.size() == records_before[s]) continue;
      ASSERT_EQ(before.records.size(), records_before[s] + 1);
      chop_tail(path, 4);
      ++chopped;
    }
    ASSERT_GT(chopped, 0U);

    clustering_service recovered(sc);
    EXPECT_TRUE(recovered.recovery().recovered);
    EXPECT_GT(recovered.recovery().torn_bytes, 0U);
    EXPECT_EQ(canonical_state(recovered.export_states()), golden_prefix);

    // The writer truncated the torn tails on attach: a second recovery is
    // clean and identical.
    clustering_service again(sc);
    EXPECT_EQ(again.recovery().torn_bytes, 0U);
    EXPECT_EQ(canonical_state(again.export_states()), golden_prefix);
  }
}

TEST(JournalRecovery, ResumedIngestionAfterRecoveryMatchesUninterrupted) {
  const auto stream = sample_stream();
  const std::size_t split = stream.size() / 3;

  clustering_service reference(make_serve_config(2));
  ingest_in_batches(reference, stream, 0, stream.size());
  const auto golden = canonical_state(reference.export_states());

  temp_dir dir("resume");
  auto sc = make_serve_config(2);
  sc.journal.dir = dir.path;
  sc.journal.fsync = false;
  {
    clustering_service first(sc);
    ingest_in_batches(first, stream, 0, split);
  }
  {
    clustering_service second(sc);
    EXPECT_TRUE(second.recovery().recovered);
    ingest_in_batches(second, stream, split, stream.size());
    second.drain();
    EXPECT_EQ(canonical_state(second.export_states()), golden);
  }
  // And the whole resumed run recovers again.
  clustering_service third(sc);
  EXPECT_EQ(canonical_state(third.export_states()), golden);
}

TEST(JournalRecovery, ZeroByteJournalFromCreateCrashIsRecreated) {
  // A crash between creating a journal file and writing its header
  // leaves a 0-byte file; it is provably record-free, so recovery drops
  // it and the writer recreates it — the directory must not be bricked.
  const auto stream = sample_stream(8, 21);
  temp_dir dir("zerobyte");
  auto sc = make_serve_config(2);
  sc.journal.dir = dir.path;
  sc.journal.fsync = false;
  std::string golden;
  {
    clustering_service service(sc);
    service.ingest(stream);
    service.drain();
    golden = canonical_state(service.export_states());
  }
  std::filesystem::resize_file(journal_shard_path(dir.path, 1, 0), 0);
  clustering_service recovered(sc);
  EXPECT_TRUE(recovered.recovery().recovered);
  // Shard 1's records are gone with its journal; shard 0's survive.
  EXPECT_LT(recovered.stats().record_count, stream.size());
  EXPECT_GT(recovered.stats().record_count, 0U);
  recovered.ingest(stream);  // and the shard ingests + journals again
  recovered.drain();
  clustering_service again(sc);
  EXPECT_EQ(canonical_state(again.export_states()),
            canonical_state(recovered.export_states()));
}

TEST(JournalRecovery, TruncatedHeaderOnNewestFileIsRecreatedCorruptHeaderRefused) {
  // A header cut short (crash before the header write became durable) is
  // provably record-free: the newest-generation file is recreated. Wrong
  // header *bytes* (corruption) must still refuse recovery.
  const auto stream = sample_stream(8, 33);
  temp_dir dir("trunchdr");
  auto sc = make_serve_config(2);
  sc.journal.dir = dir.path;
  sc.journal.fsync = false;
  {
    clustering_service service(sc);
    service.ingest(stream);
    service.drain();
  }
  const auto path = journal_shard_path(dir.path, 0, 0);
  EXPECT_EQ(probe_journal_header(path), journal_header_status::ok);
  std::filesystem::resize_file(path, 9);  // mid-header
  EXPECT_EQ(probe_journal_header(path), journal_header_status::truncated);
  {
    clustering_service recovered(sc);
    EXPECT_TRUE(recovered.recovery().recovered);
    EXPECT_GT(recovered.stats().record_count, 0U);  // shard 1 survived
  }
  // Now corrupt shard 1's header bytes instead: hard error, not discard.
  {
    const auto other = journal_shard_path(dir.path, 1, 0);
    std::fstream f(other, std::ios::binary | std::ios::in | std::ios::out);
    f.write("XXXX", 4);
  }
  EXPECT_EQ(probe_journal_header(journal_shard_path(dir.path, 1, 0)),
            journal_header_status::corrupt);
  EXPECT_THROW(clustering_service{sc}, parse_error);
}

TEST(JournalRecovery, MismatchedConfigurationIsRejected) {
  const auto stream = sample_stream(8, 9);
  temp_dir dir("mismatch");
  auto sc = make_serve_config(2);
  sc.journal.dir = dir.path;
  sc.journal.fsync = false;
  {
    clustering_service service(sc);
    service.ingest(stream);
    service.drain();
  }
  {
    auto wrong = sc;
    wrong.pipeline.distance_threshold = 0.2;
    EXPECT_THROW(clustering_service{wrong}, parse_error);
  }
  {
    auto wrong = sc;
    wrong.shards = 3;  // per-shard journals cannot be re-routed
    EXPECT_THROW(clustering_service{wrong}, parse_error);
  }
  // The original configuration still recovers fine afterwards.
  clustering_service ok(sc);
  EXPECT_TRUE(ok.recovery().recovered);
}

// --- compaction --------------------------------------------------------------

TEST(JournalCompaction, RotatesGenerationsAndStaysRecoverable) {
  const auto stream = sample_stream();
  const std::size_t split = stream.size() / 2;

  clustering_service reference(make_serve_config(2));
  ingest_in_batches(reference, stream, 0, stream.size());
  const auto golden = canonical_state(reference.export_states());

  temp_dir dir("compact");
  auto sc = make_serve_config(2);
  sc.journal.dir = dir.path;
  sc.journal.fsync = false;
  {
    clustering_service service(sc);
    ingest_in_batches(service, stream, 0, split);
    service.drain();
    service.compact_journal();

    // The directory now holds a generation-1 snapshot and fresh journals;
    // generation 0 files are gone.
    const auto state = scan_journal_dir(dir.path);
    ASSERT_TRUE(state.snapshot_generation.has_value());
    EXPECT_EQ(*state.snapshot_generation, 1U);
    for (const auto& j : state.journals) EXPECT_EQ(j.generation, 1U);
    EXPECT_EQ(state.journals.size(), 2U);
    for (std::size_t s = 0; s < 2; ++s) {
      EXPECT_EQ(read_journal_file(journal_shard_path(dir.path, s, 1)).records.size(), 0U);
    }

    ingest_in_batches(service, stream, split, stream.size());
    service.drain();
    EXPECT_EQ(canonical_state(service.export_states()), golden);
  }

  clustering_service recovered(sc);
  ASSERT_TRUE(recovered.recovery().base_snapshot_generation.has_value());
  EXPECT_EQ(*recovered.recovery().base_snapshot_generation, 1U);
  EXPECT_EQ(canonical_state(recovered.export_states()), golden);
}

TEST(JournalCompaction, ThresholdDrivenCompactionTriggers) {
  const auto stream = sample_stream();
  temp_dir dir("threshold");
  auto sc = make_serve_config(2);
  sc.journal.dir = dir.path;
  sc.journal.fsync = false;
  sc.journal.compact_max_records = 2;  // tiny: force a rotation
  clustering_service service(sc);
  EXPECT_FALSE(service.maybe_compact_journal());  // nothing written yet
  ingest_in_batches(service, stream, 0, stream.size());
  service.drain();
  EXPECT_TRUE(service.maybe_compact_journal());
  EXPECT_FALSE(service.maybe_compact_journal());  // fresh journals are empty
  const auto state = scan_journal_dir(dir.path);
  ASSERT_TRUE(state.snapshot_generation.has_value());

  clustering_service recovered(sc);
  EXPECT_EQ(canonical_state(recovered.export_states()),
            canonical_state(service.export_states()));
}

TEST(JournalCompaction, CrashBetweenRotationAndSnapshotStillRecovers) {
  // The compaction protocol's crash window: journals already rotated to
  // generation g+1 but the g+1 snapshot never became durable. Recovery
  // must fall back to generation g and replay *both* generations in
  // order. Recreate that layout by keeping a copy of the gen-0 journals
  // (compaction deletes them) and dropping the gen-1 snapshot.
  const auto stream = sample_stream();
  const std::size_t split = stream.size() / 2;

  clustering_service reference(make_serve_config(2));
  ingest_in_batches(reference, stream, 0, stream.size());
  const auto golden = canonical_state(reference.export_states());

  temp_dir dir("crashwin");
  auto sc = make_serve_config(2);
  sc.journal.dir = dir.path;
  sc.journal.fsync = false;
  {
    clustering_service service(sc);
    ingest_in_batches(service, stream, 0, split);
    service.drain();
    std::filesystem::create_directories(dir.path + "/keep");
    for (std::size_t s = 0; s < 2; ++s) {
      const auto path = journal_shard_path(dir.path, s, 0);
      std::filesystem::copy_file(
          path, dir.path + "/keep/" + std::filesystem::path(path).filename().string());
    }
    service.compact_journal();
    ingest_in_batches(service, stream, split, stream.size());
    service.drain();
    EXPECT_EQ(canonical_state(service.export_states()), golden);
  }
  for (std::size_t s = 0; s < 2; ++s) {
    const auto path = journal_shard_path(dir.path, s, 0);
    std::filesystem::rename(dir.path + "/keep/" +
                                std::filesystem::path(path).filename().string(),
                            path);
  }
  std::filesystem::remove(journal_snapshot_path(dir.path, 1));

  clustering_service recovered(sc);
  EXPECT_FALSE(recovered.recovery().base_snapshot_generation.has_value());
  EXPECT_EQ(recovered.recovery().journal_files, 4U);  // both generations replayed
  EXPECT_EQ(canonical_state(recovered.export_states()), golden);
}

TEST(JournalCompaction, FailedRotationFallsBackAndRetrySucceedsAtFreshGeneration) {
  // Force a *half-failed* compaction: shard 0 rotates to generation 1,
  // then shard 1's rotation hits an occupied generation-1 file (O_EXCL).
  // Shard 1 must fall back to its generation-0 journal (ingestion keeps
  // being journaled, not dropped), and the retry must pick a fresh
  // generation past every shard's current one instead of re-hitting the
  // conflict forever.
  const auto stream = sample_stream();
  const std::size_t split = stream.size() / 2;

  clustering_service reference(make_serve_config(2));
  ingest_in_batches(reference, stream, 0, stream.size());
  const auto golden = canonical_state(reference.export_states());

  temp_dir dir("rotfail");
  auto sc = make_serve_config(2);
  sc.journal.dir = dir.path;
  sc.journal.fsync = false;
  std::string live;
  {
    clustering_service service(sc);
    ingest_in_batches(service, stream, 0, split);
    service.drain();
    std::ofstream(journal_shard_path(dir.path, 1, 1)) << "occupied";
    EXPECT_THROW(service.compact_journal(), spechd::error);
    // Shards now sit at mixed generations (0 rotated to 1, 1 fell back
    // to 0) and ingestion is still journaled on both.
    ingest_in_batches(service, stream, split, stream.size());
    service.drain();
    EXPECT_EQ(canonical_state(service.export_states()), golden);
    // Retry — without touching the conflicting file — lands on a fresh
    // generation and cleans the old ones (including the garbage file).
    service.compact_journal();
    const auto state = scan_journal_dir(dir.path);
    ASSERT_TRUE(state.snapshot_generation.has_value());
    EXPECT_EQ(*state.snapshot_generation, 2U);
    live = canonical_state(service.export_states());
    EXPECT_EQ(live, golden);
  }
  clustering_service recovered(sc);
  EXPECT_EQ(canonical_state(recovered.export_states()), golden);
}

TEST(JournalCompaction, RestoreIntoJournaledServiceRebasesTheDirectory) {
  const auto stream = sample_stream();
  temp_dir dir("restorejrnl");
  const std::string snap =
      (std::filesystem::temp_directory_path() /
       ("spechd_jrnl_restore_" + std::to_string(::getpid()) + ".sphsnap")).string();

  clustering_service source(make_serve_config(2));
  ingest_in_batches(source, stream, 0, stream.size() / 2);
  source.snapshot_file(snap);
  const auto restored_golden = canonical_state(source.export_states());

  auto sc = make_serve_config(2);
  sc.journal.dir = dir.path;
  sc.journal.fsync = false;
  {
    clustering_service service(sc);
    service.ingest({stream.begin() + static_cast<std::ptrdiff_t>(stream.size() / 2),
                    stream.end()});  // unrelated pre-restore state
    service.drain();
    service.restore_file(snap);
    EXPECT_EQ(canonical_state(service.export_states()), restored_golden);
  }
  // The directory was rebased onto the restored state: recovery yields it.
  clustering_service recovered(sc);
  EXPECT_EQ(canonical_state(recovered.export_states()), restored_golden);
  std::filesystem::remove(snap);
}

// --- fault injection ---------------------------------------------------------

/// Disarms every failpoint on entry and exit so a failing assertion in one
/// test cannot leak an armed fault into the next (the registry is global).
struct failpoint_guard {
  failpoint_guard() { util::registry().reset(); }
  ~failpoint_guard() { util::registry().reset(); }
};

TEST(JournalFaults, ShortWritesInAppendCompleteWithoutCorruption) {
  // A partial write(2) return is a retry, never framing corruption: with
  // the append site forced short repeatedly, every record still lands
  // whole and recovery is bit-identical.
  failpoint_guard guard;
  const auto stream = sample_stream();
  temp_dir dir("shortwrite");
  auto sc = make_serve_config(2);
  sc.journal.dir = dir.path;
  sc.journal.fsync = false;
  std::string live;
  {
    clustering_service service(sc);
    util::registry().arm_from_spec("journal.append.write=short@times8");
    ingest_in_batches(service, stream, 0, stream.size());
    service.drain();
    EXPECT_EQ(util::registry().stats("journal.append.write").fires, 8U);
    EXPECT_EQ(service.stats().degraded_shards, 0U);
    EXPECT_EQ(service.stats().failed_shards, 0U);
    live = canonical_state(service.export_states());
    util::registry().reset();
  }
  clustering_service recovered(sc);
  EXPECT_TRUE(recovered.recovery().recovered);
  EXPECT_EQ(canonical_state(recovered.export_states()), live);
}

TEST(JournalFaults, AppendErrorDegradesShardAndCompactionHeals) {
  failpoint_guard guard;
  const auto stream = sample_stream();
  const std::size_t split = stream.size() / 2;
  temp_dir dir("appenderr");
  auto sc = make_serve_config(1);
  sc.journal.dir = dir.path;
  sc.journal.fsync = false;
  std::string prefix;
  std::string live;
  {
    clustering_service service(sc);
    ingest_in_batches(service, stream, 0, split);
    service.drain();
    prefix = canonical_state(service.export_states());

    // One hard append failure: the batch is dropped, the record rolled
    // back, and the shard leaves healthy — loudly, not silently.
    util::registry().arm_from_spec("journal.append.write=error:ENOSPC@times1");
    service.ingest({stream.begin() + static_cast<std::ptrdiff_t>(split), stream.end()});
    EXPECT_THROW(service.drain(), io_error);
    auto stats = service.stats();
    EXPECT_EQ(stats.degraded_shards, 1U);
    ASSERT_EQ(stats.shards.size(), 1U);
    EXPECT_EQ(stats.shards[0].health, shard_health::degraded);
    EXPECT_FALSE(stats.shards[0].last_error.empty());
    EXPECT_GT(stats.dropped, 0U);
    // Degraded shards are read-only: further ingest is rejected with the
    // shard's health in the message, and the live state is untouched.
    EXPECT_THROW(
        service.ingest({stream.begin(), stream.begin() + 1}), spechd::error);
    EXPECT_EQ(canonical_state(service.export_states()), prefix);

    // Compaction reconciles journal and applied state — and heals.
    service.compact_journal();
    EXPECT_EQ(service.stats().degraded_shards, 0U);
    service.ingest({stream.begin() + static_cast<std::ptrdiff_t>(split), stream.end()});
    service.drain();
    live = canonical_state(service.export_states());
    EXPECT_NE(live, prefix);
  }
  // The dropped batch never reached the journal: recovery lands exactly on
  // the state the service actually held.
  clustering_service recovered(sc);
  EXPECT_EQ(canonical_state(recovered.export_states()), live);
}

TEST(JournalFaults, SnapshotPathFailuresLeaveDirectoryRecoverable) {
  // Disk-full/EIO at every step of the compaction snapshot protocol
  // (tmp open/write, tmp fsync, rename, directory fsync): the previous
  // snapshot and every journal generation stay replayable, the live state
  // is untouched, and a retry lands on a fresh generation.
  const auto stream = sample_stream();
  const std::size_t split = stream.size() / 2;
  for (const std::string site : {"snapshot.open", "snapshot.write", "snapshot.fsync",
                                 "snapshot.rename", "dir.fsync"}) {
    SCOPED_TRACE(site);
    failpoint_guard guard;
    temp_dir dir("snapfault_" + site);
    auto sc = make_serve_config(2);
    sc.journal.dir = dir.path;
    sc.journal.fsync = true;  // exercise the fsync sites for real
    std::string live;
    {
      clustering_service service(sc);
      ingest_in_batches(service, stream, 0, split);
      service.drain();
      service.compact_journal();  // a real base snapshot to fall back to
      ingest_in_batches(service, stream, split, stream.size());
      service.drain();
      live = canonical_state(service.export_states());

      util::registry().arm_from_spec(site + "=error:ENOSPC@times1");
      EXPECT_THROW(service.compact_journal(), spechd::error);
      EXPECT_EQ(util::registry().stats(site).fires, 1U);
      EXPECT_EQ(canonical_state(service.export_states()), live);
      // Injection budget spent: the retry completes.
      service.compact_journal();
      EXPECT_EQ(canonical_state(service.export_states()), live);
    }
    clustering_service recovered(sc);
    EXPECT_TRUE(recovered.recovery().recovered);
    EXPECT_EQ(canonical_state(recovered.export_states()), live);
  }
}

TEST(JournalFaults, AtomicIngestAbortsWholeTransactionWhenOneShardFails) {
  failpoint_guard guard;
  const auto stream = sample_stream();
  const std::size_t split = stream.size() / 2;
  temp_dir dir("txnabort");
  auto sc = make_serve_config(4);
  sc.journal.dir = dir.path;
  sc.journal.fsync = false;
  sc.atomic_ingest = true;
  std::string prefix;
  {
    clustering_service service(sc);
    ingest_in_batches(service, stream, 0, split);
    service.drain();
    prefix = canonical_state(service.export_states());

    // Fail exactly one participant's data-record append of the next
    // multi-shard transaction: no shard may apply its slice.
    util::registry().arm_from_spec("journal.append.write=error:EIO@times1");
    service.ingest({stream.begin() + static_cast<std::ptrdiff_t>(split), stream.end()});
    EXPECT_THROW(service.drain(), io_error);
    EXPECT_EQ(canonical_state(service.export_states()), prefix);
    auto stats = service.stats();
    EXPECT_EQ(stats.degraded_shards, 1U);  // the faulty shard, and only it
    EXPECT_EQ(stats.failed_shards, 0U);    // innocent participants stay healthy
  }
  // Every data record was rolled back: the journals hold no trace.
  clustering_service recovered(sc);
  EXPECT_EQ(recovered.recovery().txn_batches_dropped, 0U);
  EXPECT_EQ(canonical_state(recovered.export_states()), prefix);
}

TEST(JournalFaults, CommittedTransactionsReplayIdentically) {
  // The happy path of cross-shard atomicity: a journaled atomic service
  // equals the plain reference live, and recovery replays every committed
  // transaction to the same bytes.
  failpoint_guard guard;
  const auto stream = sample_stream();
  clustering_service reference(make_serve_config(4));
  ingest_in_batches(reference, stream, 0, stream.size());
  const auto golden = canonical_state(reference.export_states());

  temp_dir dir("txngolden");
  auto sc = make_serve_config(4);
  sc.journal.dir = dir.path;
  sc.journal.fsync = false;
  sc.atomic_ingest = true;
  {
    clustering_service service(sc);
    ingest_in_batches(service, stream, 0, stream.size());
    service.drain();
    EXPECT_EQ(canonical_state(service.export_states()), golden);
  }
  clustering_service recovered(sc);
  EXPECT_TRUE(recovered.recovery().recovered);
  EXPECT_GT(recovered.recovery().max_txn_id, 0U);
  EXPECT_EQ(recovered.recovery().txn_batches_dropped, 0U);
  EXPECT_EQ(canonical_state(recovered.export_states()), golden);
}

TEST(JournalFaults, TornTransactionRecordsDropTheTransactionEverywhere) {
  // The acceptance case: a multi-shard batch whose commit record — or one
  // participant's data record — did not survive the crash must vanish on
  // *every* shard at recovery, never apply on some and not others.
  failpoint_guard guard;
  const auto stream = sample_stream();
  const std::size_t split = (stream.size() * 3) / 4;
  temp_dir dir("torntxn");
  auto sc = make_serve_config(2);
  sc.journal.dir = dir.path;
  sc.journal.fsync = false;
  sc.atomic_ingest = true;
  std::string prefix;
  std::string full;
  {
    clustering_service service(sc);
    ingest_in_batches(service, stream, 0, split);
    service.drain();
    prefix = canonical_state(service.export_states());
    // One final multi-shard transaction.
    service.ingest({stream.begin() + static_cast<std::ptrdiff_t>(split), stream.end()});
    service.drain();
    full = canonical_state(service.export_states());
    ASSERT_NE(full, prefix);
  }
  // The layout the chops below rely on: the final transaction left its
  // commit record last on the coordinator (shard 0) and its data record
  // last on shard 1. (Holds whenever the final batch spans both shards,
  // which this stream's precursor spread guarantees.)
  {
    const auto scan0 = read_journal_file(journal_shard_path(dir.path, 0, 0));
    const auto scan1 = read_journal_file(journal_shard_path(dir.path, 1, 0));
    ASSERT_FALSE(scan0.records.empty());
    ASSERT_FALSE(scan1.records.empty());
    ASSERT_EQ(scan0.records.back().type, journal_record::kind::commit);
    ASSERT_EQ(scan1.records.back().type, journal_record::kind::ingest_batch);
    ASSERT_NE(scan1.records.back().txn_id, 0U);
  }
  // Keep pristine copies: each variant mutates the directory (recovery
  // itself truncates torn tails when the writers attach).
  for (std::size_t s = 0; s < 2; ++s) {
    const auto path = journal_shard_path(dir.path, s, 0);
    std::filesystem::copy_file(path, path + ".keep");
  }
  const auto restore = [&] {
    for (std::size_t s = 0; s < 2; ++s) {
      const auto path = journal_shard_path(dir.path, s, 0);
      std::filesystem::copy_file(path + ".keep", path,
                                 std::filesystem::copy_options::overwrite_existing);
    }
  };

  // Variant 1: tear the commit record (last record on the coordinator —
  // the lowest participating shard). Both data records survive, but the
  // transaction is unproven: both slices are dropped.
  chop_tail(journal_shard_path(dir.path, 0, 0), 4);
  {
    clustering_service recovered(sc);
    EXPECT_TRUE(recovered.recovery().recovered);
    EXPECT_EQ(recovered.recovery().txn_batches_dropped, 2U);
    EXPECT_EQ(canonical_state(recovered.export_states()), prefix);
  }

  // Variant 2: tear a *participant's* data record instead (shard 1's last
  // record). The commit record survives on shard 0, but the evidence is
  // incomplete — shard 0's slice must not apply either.
  restore();
  chop_tail(journal_shard_path(dir.path, 1, 0), 4);
  {
    clustering_service recovered(sc);
    EXPECT_TRUE(recovered.recovery().recovered);
    EXPECT_EQ(recovered.recovery().txn_batches_dropped, 1U);
    EXPECT_EQ(canonical_state(recovered.export_states()), prefix);
  }

  // Control: with the journals intact, the transaction replays whole.
  restore();
  for (std::size_t s = 0; s < 2; ++s) {
    std::filesystem::remove(journal_shard_path(dir.path, s, 0) + ".keep");
  }
  clustering_service recovered(sc);
  EXPECT_EQ(recovered.recovery().txn_batches_dropped, 0U);
  EXPECT_EQ(canonical_state(recovered.export_states()), full);
}

// --- maintenance scheduler ---------------------------------------------------

TEST(Maintenance, BackgroundSchedulerReclustersIdleShardsAndStaysRecoverable) {
  const auto stream = sample_stream();
  temp_dir dir("sched");
  auto sc = make_serve_config(2);
  sc.journal.dir = dir.path;
  sc.journal.fsync = false;
  sc.maintenance.enabled = true;
  sc.maintenance.interval = std::chrono::milliseconds(5);

  std::string live;
  {
    clustering_service service(sc);
    ingest_in_batches(service, stream, 0, stream.size());
    service.drain();
    // The scheduler runs every 5 ms; ingestion marked buckets dirty, so
    // reclusters must land shortly.
    for (int spin = 0; spin < 400 && service.stats().dirty_buckets != 0; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(service.stats().dirty_buckets, 0U);
    live = canonical_state(service.export_states());
  }

  // However the scheduler interleaved reclusters with ingestion, the
  // journal recorded them at their true stream positions: recovery lands
  // on the same bytes.
  auto quiet = sc;
  quiet.maintenance.enabled = false;  // recovery only; no new reclusters
  clustering_service recovered(quiet);
  EXPECT_GT(recovered.recovery().reclusters_replayed, 0U);
  EXPECT_EQ(canonical_state(recovered.export_states()), live);
}

TEST(Maintenance, RunMaintenanceNowMatchesRebuildDirtyBuckets) {
  // The deterministic trigger equals a reference clusterer doing
  // rebuild_dirty_buckets at the same stream position, per bucket.
  const auto stream = sample_stream(24, 15);
  const auto config = small_config();

  core::incremental_clusterer reference(config);
  reference.add_spectra(stream);
  reference.rebuild_dirty_buckets();
  const auto expected = canonical_state({reference.export_state()});

  clustering_service service(make_serve_config(1));
  service.ingest(stream);
  service.drain();
  EXPECT_GT(service.stats().dirty_buckets, 0U);
  service.run_maintenance_now();
  EXPECT_EQ(service.stats().dirty_buckets, 0U);
  EXPECT_EQ(canonical_state(service.export_states()), expected);

  // Nothing dirty: a second trigger is accepted but journals nothing and
  // changes nothing (no-op on the writer thread).
  service.run_maintenance_now();
  EXPECT_EQ(canonical_state(service.export_states()), expected);
}

}  // namespace
}  // namespace spechd::serve
