// Load-aware maintenance scheduling (src/serve/maintenance.*): the
// scheduler must keep reclustering/compacting on its interval while the
// service is idle, defer both while the ingest-rate EWMA sits at or above
// busy_ingest_rate (counting each deferred tick), run anyway once
// max_deferred_ticks consecutive deferrals have piled up (bounded
// staleness), and fall back to the old always-run behaviour when the
// ingest_records hook is absent or the busy threshold is disabled. The
// hooks are driven synthetically — an atomic "cumulative records" feeder
// stands in for the service — so every test observes the real scheduler
// thread without a real service.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "serve/maintenance.hpp"

namespace spechd::serve {
namespace {

using namespace std::chrono_literals;

// Spins until `done(stats)` holds or `timeout` passes; returns the last
// stats either way. Keeps the tests tight on fast machines and honest on
// slow CI (no fixed sleeps around the assertion itself).
template <typename Pred>
maintenance_scheduler::counters wait_for(const maintenance_scheduler& sched,
                                         Pred done,
                                         std::chrono::milliseconds timeout = 3000ms) {
  const auto give_up = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto stats = sched.stats();
    if (done(stats) || std::chrono::steady_clock::now() > give_up) return stats;
    std::this_thread::sleep_for(2ms);
  }
}

maintenance_config fast_config() {
  maintenance_config config;
  config.enabled = true;
  config.interval = 5ms;
  config.busy_ingest_rate = 1000.0;
  config.ingest_ewma_alpha = 1.0;  // react to the newest sample instantly
  config.max_deferred_ticks = 0;   // defer forever unless a test says otherwise
  return config;
}

// A feeder whose cumulative count jumps by `step` every time the
// scheduler samples it: with a 5 ms interval, step=1000 reads as
// ~200k records/s — far past the busy bar; step=0 reads as idle.
struct synthetic_service {
  std::atomic<std::uint64_t> ingested{0};
  std::atomic<std::uint64_t> step{0};
  std::atomic<std::uint64_t> maintenance_runs{0};

  maintenance_scheduler::hooks hooks() {
    maintenance_scheduler::hooks h;
    h.run_maintenance = [this] {
      maintenance_runs.fetch_add(1, std::memory_order_relaxed);
      return std::size_t{1};
    };
    h.maybe_compact = [] { return false; };
    h.ingest_records = [this] {
      return ingested.fetch_add(step.load(std::memory_order_relaxed),
                                std::memory_order_relaxed);
    };
    return h;
  }
};

TEST(Maintenance, RunsOnIntervalWhileIdle) {
  synthetic_service svc;  // step 0: the rate EWMA stays at 0
  maintenance_scheduler sched(fast_config(), svc.hooks());
  const auto stats =
      wait_for(sched, [](const auto& s) { return s.reclusters >= 3; });
  EXPECT_GE(stats.reclusters, 3u);
  EXPECT_EQ(stats.deferrals, 0u);
  EXPECT_DOUBLE_EQ(sched.ingest_rate_ewma(), 0.0);
}

TEST(Maintenance, DefersUnderSustainedIngest) {
  synthetic_service svc;
  svc.step.store(1000);  // ~200k records/s at a 5 ms interval
  maintenance_scheduler sched(fast_config(), svc.hooks());

  // The first tick establishes the EWMA baseline (and may run); once the
  // rate is primed, every further tick defers.
  auto stats = wait_for(sched, [](const auto& s) { return s.deferrals >= 3; });
  EXPECT_GE(stats.deferrals, 3u);
  EXPECT_GE(sched.ingest_rate_ewma(), 1000.0);

  // Sustained load: reclusters stop dead while deferrals keep counting.
  const auto reclusters_frozen = stats.reclusters;
  stats = wait_for(sched, [&](const auto& s) {
    return s.deferrals >= reclusters_frozen + 8;
  });
  EXPECT_EQ(stats.reclusters, reclusters_frozen);
  EXPECT_GT(stats.deferrals, 3u);

  // Load stops: the EWMA (alpha 1.0) collapses on the next sample and
  // maintenance resumes.
  svc.step.store(0);
  stats = wait_for(sched, [&](const auto& s) {
    return s.reclusters > reclusters_frozen;
  });
  EXPECT_GT(stats.reclusters, reclusters_frozen);
  EXPECT_LT(sched.ingest_rate_ewma(), 1000.0);
}

TEST(Maintenance, MaxDeferredTicksBoundsStaleness) {
  synthetic_service svc;
  svc.step.store(1000);
  auto config = fast_config();
  config.max_deferred_ticks = 3;  // every 4th busy tick runs anyway
  maintenance_scheduler sched(config, svc.hooks());

  const auto stats = wait_for(
      sched, [](const auto& s) { return s.reclusters >= 3 && s.deferrals >= 6; });
  EXPECT_GE(stats.reclusters, 3u) << "the staleness cap never forced a run";
  EXPECT_GE(stats.deferrals, 6u) << "the busy stream never deferred";
  // The cap resets the streak, so deferrals accumulate in bursts of at
  // most max_deferred_ticks between forced runs — never fewer runs than
  // deferrals/cap would demand (with slack for the tick racing stats()).
  EXPECT_GE(stats.reclusters + 1, stats.deferrals / (config.max_deferred_ticks + 1));
}

TEST(Maintenance, NoIngestHookDisablesDeferral) {
  synthetic_service svc;
  svc.step.store(1000);
  auto hooks = svc.hooks();
  hooks.ingest_records = nullptr;  // unjournaled/legacy wiring
  maintenance_scheduler sched(fast_config(), hooks);
  const auto stats =
      wait_for(sched, [](const auto& s) { return s.reclusters >= 3; });
  EXPECT_GE(stats.reclusters, 3u);
  EXPECT_EQ(stats.deferrals, 0u);
}

TEST(Maintenance, ZeroBusyRateDisablesDeferral) {
  synthetic_service svc;
  svc.step.store(1000);
  auto config = fast_config();
  config.busy_ingest_rate = 0.0;
  maintenance_scheduler sched(config, svc.hooks());
  const auto stats =
      wait_for(sched, [](const auto& s) { return s.reclusters >= 3; });
  EXPECT_GE(stats.reclusters, 3u);
  EXPECT_EQ(stats.deferrals, 0u);
}

TEST(Maintenance, StatsExposeDeferralsAndTicks) {
  synthetic_service svc;
  svc.step.store(1000);
  maintenance_scheduler sched(fast_config(), svc.hooks());
  const auto stats =
      wait_for(sched, [](const auto& s) { return s.deferrals >= 2; });
  EXPECT_GE(stats.ticks, stats.deferrals);  // every deferral is one tick
  EXPECT_GE(stats.deferrals, 2u);
  EXPECT_EQ(stats.failures, 0u);
}

}  // namespace
}  // namespace spechd::serve
