// Open-modification search property layer: the shifted-bucket walk's
// window guarantees (exact-match bucket always probed, symmetric around
// the precursor mass, zero tolerance degenerates to the exact bucket
// bit-for-bit), spectral_library search pinned field-for-field against an
// independent brute-force oracle, shard-count independence of
// service-level search, and the .sphlib snapshot's round-trip/corruption/
// identity-validation behaviour.
#include "serve/search.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "hdc/encoder.hpp"
#include "ms/fasta.hpp"
#include "ms/synthetic.hpp"
#include "preprocess/bucket.hpp"
#include "preprocess/pipeline.hpp"
#include "serve/service.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace spechd::serve {
namespace {

std::vector<ms::spectrum> sample_stream(std::size_t peptides = 24,
                                        std::uint64_t seed = 77) {
  ms::synthetic_config config;
  config.peptide_count = peptides;
  config.spectra_per_peptide_mean = 3.0;
  config.noise_peaks_per_spectrum = 20.0;
  config.seed = seed;
  return ms::generate_dataset(config).spectra;
}

core::spechd_config small_config() {
  core::spechd_config config;
  config.encoder.dim = 1024;
  config.threads = 1;
  return config;
}

struct temp_path {
  std::string path;
  explicit temp_path(const std::string& name)
      : path((std::filesystem::temp_directory_path() /
              ("spechd_search_" + name + "_" + std::to_string(::getpid()))).string()) {}
  ~temp_path() { std::remove(path.c_str()); }
};

/// Encodes one query spectrum exactly like the library build does;
/// nullopt when preprocessing drops it.
std::optional<hdc::hypervector> encode_query(const ms::spectrum& s,
                                             const core::spechd_config& config,
                                             double& mz, int& charge) {
  auto batch = preprocess::run_preprocessing({s}, config.preprocess);
  if (batch.spectra.empty()) return std::nullopt;
  const hdc::id_level_encoder encoder(config.encoder,
                                      config.preprocess.quantize.mz_bins,
                                      config.preprocess.quantize.intensity_levels);
  mz = batch.spectra.front().precursor_mz;
  charge = batch.spectra.front().precursor_charge;
  return encoder.encode(batch.spectra.front());
}

/// Independent re-derivation of the library's gid-ordered contents —
/// same preprocessing/encoding/ordering rules, none of the library code.
struct oracle_library {
  std::vector<library_entry> entries;  ///< gid order
  std::vector<hdc::hypervector> hvs;   ///< gid order
};

oracle_library build_oracle(const std::vector<ms::spectrum>& spectra,
                            const core::spechd_config& config) {
  auto batch = preprocess::run_preprocessing(spectra, config.preprocess);
  const hdc::id_level_encoder encoder(config.encoder,
                                      config.preprocess.quantize.mz_bins,
                                      config.preprocess.quantize.intensity_levels);
  std::vector<library_entry> entries;
  std::vector<hdc::hypervector> hvs;
  for (const auto& q : batch.spectra) {
    library_entry e;
    e.name = spectra[q.source_index].title;
    e.precursor_mz = q.precursor_mz;
    e.precursor_charge = q.precursor_charge;
    e.bucket_key = preprocess::bucket_index(q.precursor_mz, q.precursor_charge,
                                            config.preprocess.bucketing);
    entries.push_back(std::move(e));
    hvs.push_back(encoder.encode(q));
  }
  std::vector<std::uint32_t> order(entries.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&entries](std::uint32_t a, std::uint32_t b) {
                     return entries[a].bucket_key < entries[b].bucket_key;
                   });
  oracle_library lib;
  for (const auto i : order) {
    lib.entries.push_back(entries[i]);
    lib.hvs.push_back(hvs[i]);
  }
  return lib;
}

/// Brute-force reference search: full Hamming against every candidate in
/// the window, total (count, gid) sort — no tiles, no k-select, no bucket
/// blocks. spectral_library::search must match this field for field.
search_result oracle_search(const oracle_library& lib, const hdc::hypervector& query,
                            double mz, int charge, std::size_t top_k, double tolerance,
                            const core::spechd_config& config) {
  const auto window =
      shifted_key_window(mz, charge, tolerance, config.preprocess.bucketing);
  search_result result;
  std::set<std::int64_t> probed;
  std::vector<std::uint64_t> keys;
  for (std::size_t gid = 0; gid < lib.entries.size(); ++gid) {
    const auto key = lib.entries[gid].bucket_key;
    if (key < window.lo || key > window.hi) continue;
    probed.insert(key);
    result.candidates += 1;
    const auto count = hdc::hamming(query, lib.hvs[gid]);
    keys.push_back((static_cast<std::uint64_t>(count) << 32) | gid);
  }
  result.buckets_probed = probed.size();
  std::sort(keys.begin(), keys.end());
  keys.resize(std::min(top_k, keys.size()));
  for (const auto key : keys) {
    const auto gid = static_cast<std::uint32_t>(key & 0xFFFFFFFFu);
    const auto& e = lib.entries[gid];
    search_hit hit;
    hit.id = gid;
    hit.hamming = static_cast<std::uint32_t>(key >> 32);
    hit.distance = static_cast<double>(hit.hamming) /
                   static_cast<double>(config.encoder.dim);
    hit.bucket_key = e.bucket_key;
    hit.precursor_mz = e.precursor_mz;
    hit.precursor_charge = e.precursor_charge;
    hit.name = e.name;
    result.hits.push_back(std::move(hit));
  }
  return result;
}

// --- shifted_key_window properties -------------------------------------------

TEST(ShiftedKeyWindow, ExactMatchBucketAlwaysInside) {
  preprocess::bucket_config bucketing;
  xoshiro256ss rng(20260808);
  for (int i = 0; i < 2000; ++i) {
    const double mz = 101.0 + static_cast<double>(rng.bounded(1800 * 1000)) / 1000.0;
    const int charge = static_cast<int>(rng.bounded(5));  // 0 exercises fallback
    const double tolerance = static_cast<double>(rng.bounded(40000)) / 1000.0 - 5.0;
    const auto exact = preprocess::bucket_index(mz, charge, bucketing);
    const auto window = shifted_key_window(mz, charge, tolerance, bucketing);
    ASSERT_LE(window.lo, exact) << "mz=" << mz << " z=" << charge << " tol=" << tolerance;
    ASSERT_GE(window.hi, exact) << "mz=" << mz << " z=" << charge << " tol=" << tolerance;
  }
}

TEST(ShiftedKeyWindow, SymmetricAroundPrecursorMass) {
  // The window's ends are the buckets of (mass − tol) and (mass + tol):
  // shifting the query mass down or up by the same tolerance reaches
  // exactly the window edge on each side.
  preprocess::bucket_config bucketing;
  xoshiro256ss rng(42);
  for (int i = 0; i < 2000; ++i) {
    const double mz = 150.0 + static_cast<double>(rng.bounded(1500 * 1000)) / 1000.0;
    const int charge = 1 + static_cast<int>(rng.bounded(4));
    const double tolerance = 0.001 + static_cast<double>(rng.bounded(30000)) / 1000.0;
    const auto window = shifted_key_window(mz, charge, tolerance, bucketing);
    const double mass = (mz - ms::hydrogen_mass) * charge;
    const double shifted_lo_mz = (mass - tolerance) / charge + ms::hydrogen_mass;
    const double shifted_hi_mz = (mass + tolerance) / charge + ms::hydrogen_mass;
    EXPECT_EQ(window.lo, preprocess::bucket_index(shifted_lo_mz, charge, bucketing))
        << "mz=" << mz << " z=" << charge << " tol=" << tolerance;
    EXPECT_EQ(window.hi, preprocess::bucket_index(shifted_hi_mz, charge, bucketing))
        << "mz=" << mz << " z=" << charge << " tol=" << tolerance;
  }
}

TEST(ShiftedKeyWindow, ZeroOrNegativeToleranceDegeneratesToExactBucket) {
  preprocess::bucket_config bucketing;
  xoshiro256ss rng(7);
  for (int i = 0; i < 500; ++i) {
    const double mz = 101.0 + static_cast<double>(rng.bounded(1800 * 100)) / 100.0;
    const int charge = static_cast<int>(rng.bounded(4));
    const auto exact = preprocess::bucket_index(mz, charge, bucketing);
    for (const double tolerance : {0.0, -1.0, -1e9}) {
      const auto window = shifted_key_window(mz, charge, tolerance, bucketing);
      ASSERT_EQ(window.lo, exact);
      ASSERT_EQ(window.hi, exact);
    }
  }
}

// --- library search vs the brute-force oracle --------------------------------

TEST(Search, MatchesBruteForceOracleAcrossTolerancesAndK) {
  const auto config = small_config();
  const auto reference = sample_stream(24, 77);
  const auto lib = spectral_library::from_spectra(reference, config);
  const auto oracle = build_oracle(reference, config);
  ASSERT_EQ(lib.size(), oracle.entries.size());

  const auto queries = sample_stream(12, 123);  // different seed: near-misses
  std::size_t checked = 0;
  for (const auto& q : queries) {
    double mz = 0.0;
    int charge = 0;
    const auto hv = encode_query(q, config, mz, charge);
    if (!hv) continue;
    for (const double tolerance : {0.0, 0.5, 2.5, 25.0}) {
      for (const std::size_t top_k : {1UL, 3UL, 17UL}) {
        const auto got = lib.search(*hv, mz, charge, top_k, tolerance);
        const auto want = oracle_search(oracle, *hv, mz, charge, top_k, tolerance,
                                        config);
        ASSERT_EQ(got, want) << q.title << " tol=" << tolerance << " k=" << top_k;
        ++checked;
      }
    }
  }
  ASSERT_GT(checked, 0U);
}

TEST(Search, ZeroToleranceReproducesExactBucketBitForBit) {
  // tolerance 0 must walk exactly one bucket — the query's own — and its
  // results must be bit-identical to a brute-force scan restricted to
  // entries with that exact bucket key.
  const auto config = small_config();
  const auto reference = sample_stream(20, 9);
  const auto lib = spectral_library::from_spectra(reference, config);
  const auto oracle = build_oracle(reference, config);
  std::size_t nonempty = 0;
  for (const auto& q : reference) {
    double mz = 0.0;
    int charge = 0;
    const auto hv = encode_query(q, config, mz, charge);
    if (!hv) continue;
    const auto got = lib.search(*hv, mz, charge, 8, 0.0);
    const auto want = oracle_search(oracle, *hv, mz, charge, 8, 0.0, config);
    ASSERT_EQ(got, want) << q.title;
    ASSERT_LE(got.buckets_probed, 1U) << q.title;
    const auto exact = preprocess::bucket_index(mz, charge,
                                                config.preprocess.bucketing);
    for (const auto& hit : got.hits) ASSERT_EQ(hit.bucket_key, exact);
    nonempty += got.hits.empty() ? 0 : 1;
  }
  ASSERT_GT(nonempty, 0U);
}

TEST(Search, LibrarySpectrumFindsItselfAtHammingZero) {
  const auto config = small_config();
  const auto reference = sample_stream(16, 31);
  const auto lib = spectral_library::from_spectra(reference, config);
  std::size_t checked = 0;
  for (const auto& q : reference) {
    double mz = 0.0;
    int charge = 0;
    const auto hv = encode_query(q, config, mz, charge);
    if (!hv) continue;
    const auto r = lib.search(*hv, mz, charge, 1, 0.0);
    ASSERT_FALSE(r.hits.empty()) << q.title;
    EXPECT_EQ(r.hits.front().hamming, 0U) << q.title;
    ++checked;
  }
  ASSERT_GT(checked, 0U);
}

TEST(Search, TopKZeroAndOversizedKBehave) {
  const auto config = small_config();
  const auto reference = sample_stream(8, 3);
  const auto lib = spectral_library::from_spectra(reference, config);
  const auto& any = reference.front();
  double mz = 0.0;
  int charge = 0;
  const auto hv = encode_query(any, config, mz, charge);
  ASSERT_TRUE(hv.has_value());
  EXPECT_TRUE(lib.search(*hv, mz, charge, 0, 100.0).hits.empty());
  const auto all = lib.search(*hv, mz, charge, 1 << 20, 1e9);
  EXPECT_EQ(all.hits.size(), lib.size());  // window spans everything
  EXPECT_TRUE(std::is_sorted(all.hits.begin(), all.hits.end(),
                             [](const search_hit& a, const search_hit& b) {
                               return std::make_pair(a.hamming, a.id) <
                                      std::make_pair(b.hamming, b.id);
                             }));
}

TEST(Search, FromPeptidesIsDeterministic) {
  const auto config = small_config();
  const std::vector<ms::fasta_entry> fasta{
      {"sp|TEST1", "MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFKDLGEENFKALVLIAFAQYLQQCPF"},
      {"sp|TEST2", "MTEYKLVVVGAGGVGKSALTIQLIQNHFVDEYDPTIEDSYRKQVVIDGETCLLDILDTAG"},
  };
  const auto peptides = ms::library_from_fasta(fasta, /*missed_cleavages=*/1);
  ASSERT_FALSE(peptides.empty());
  const auto a = spectral_library::from_peptides(peptides, {2, 3}, config);
  const auto b = spectral_library::from_peptides(peptides, {2, 3}, config);
  temp_path pa("pep_a");
  temp_path pb("pep_b");
  a.save(pa.path);
  b.save(pb.path);
  std::ifstream fa(pa.path, std::ios::binary);
  std::ifstream fb(pb.path, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(fa)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(fb)),
                            std::istreambuf_iterator<char>());
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);
  // Entries are named SEQ/z and every (peptide, charge) pair that survives
  // preprocessing appears.
  EXPECT_EQ(a.size() + a.dropped(), peptides.size() * 2);
}

// --- service-level search ----------------------------------------------------

TEST(Search, ServiceSearchIndependentOfShardCount) {
  const auto config = small_config();
  const auto lib = spectral_library::from_spectra(sample_stream(24, 77), config);
  temp_path file("shards");
  lib.save(file.path);

  const auto queries = sample_stream(10, 55);
  std::vector<search_result> golden;
  for (const std::size_t shards : {1UL, 4UL}) {
    serve_config sc;
    sc.pipeline = config;
    sc.shards = shards;
    clustering_service service(sc);
    EXPECT_FALSE(service.has_library());
    EXPECT_THROW(service.search(queries.front(), 4, 1.0), spechd::error);
    service.load_library(file.path);
    EXPECT_TRUE(service.has_library());
    std::vector<search_result> results;
    for (const auto& q : queries) results.push_back(service.search(q, 4, 2.5));
    if (golden.empty()) {
      golden = std::move(results);
      std::size_t with_hits = 0;
      for (const auto& r : golden) with_hits += r.hits.empty() ? 0 : 1;
      ASSERT_GT(with_hits, 0U);
    } else {
      ASSERT_EQ(results, golden) << shards << " shards";
    }
  }
}

// --- .sphlib snapshot behaviour ----------------------------------------------

TEST(SpectralLibrary, SaveLoadRoundTripIsExact) {
  const auto config = small_config();
  const auto reference = sample_stream(20, 11);
  const auto built = spectral_library::from_spectra(reference, config);
  temp_path file("roundtrip");
  built.save(file.path);
  const auto loaded = spectral_library::load(file.path);

  ASSERT_EQ(loaded.size(), built.size());
  EXPECT_EQ(loaded.bucket_count(), built.bucket_count());
  EXPECT_TRUE(loaded.identity() == built.identity());
  for (std::size_t gid = 0; gid < built.size(); ++gid) {
    ASSERT_EQ(loaded.entry(gid), built.entry(gid)) << "gid " << gid;
  }
  // Search through the loaded library is bit-identical to the built one.
  for (const auto& q : sample_stream(6, 99)) {
    double mz = 0.0;
    int charge = 0;
    const auto hv = encode_query(q, config, mz, charge);
    if (!hv) continue;
    ASSERT_EQ(loaded.search(*hv, mz, charge, 5, 3.0),
              built.search(*hv, mz, charge, 5, 3.0));
  }
}

TEST(SpectralLibrary, CorruptionModesAreRejected) {
  const auto config = small_config();
  const auto built = spectral_library::from_spectra(sample_stream(8, 5), config);
  temp_path file("corrupt");
  built.save(file.path);
  std::ifstream in(file.path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 64U);

  const auto write_variant = [&file](const std::string& data) {
    std::ofstream out(file.path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  };

  // Flipped payload byte: CRC mismatch.
  auto flipped = bytes;
  flipped[flipped.size() / 2] = static_cast<char>(flipped[flipped.size() / 2] ^ 0x40);
  write_variant(flipped);
  EXPECT_THROW(spectral_library::load(file.path), parse_error);

  // Truncation mid-payload.
  write_variant(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(spectral_library::load(file.path), parse_error);

  // Wrong magic — including a *state snapshot's* magic: the two formats
  // share framing but must never be confused for one another.
  auto wrong_magic = bytes;
  wrong_magic[0] = 'S';
  wrong_magic[1] = 'P';
  wrong_magic[2] = 'S';
  wrong_magic[3] = 'N';
  write_variant(wrong_magic);
  EXPECT_THROW(spectral_library::load(file.path), parse_error);

  // Trailing garbage after a valid frame.
  write_variant(bytes + std::string(8, '\x7f'));
  EXPECT_THROW(spectral_library::load(file.path), parse_error);

  std::remove(file.path.c_str());
  EXPECT_THROW(spectral_library::load(file.path), io_error);
}

TEST(SpectralLibrary, ServiceRejectsMismatchedIdentity) {
  const auto config = small_config();
  const auto built = spectral_library::from_spectra(sample_stream(8, 5), config);
  temp_path file("identity");
  built.save(file.path);

  serve_config mismatched;
  mismatched.pipeline = config;
  mismatched.pipeline.encoder.dim = 2048;  // different encoding
  mismatched.shards = 1;
  clustering_service service(mismatched);
  EXPECT_THROW(service.load_library(file.path), parse_error);
  EXPECT_FALSE(service.has_library());

  // The library identity deliberately ignores clustering-only knobs: a
  // service with a different threshold/mode still accepts it.
  serve_config clustering_differs;
  clustering_differs.pipeline = config;
  clustering_differs.pipeline.distance_threshold = 0.1;
  clustering_differs.mode = core::assign_mode::bundle_representative;
  clustering_differs.shards = 2;
  clustering_service tolerant(clustering_differs);
  tolerant.load_library(file.path);
  EXPECT_TRUE(tolerant.has_library());
}

}  // namespace
}  // namespace spechd::serve
