// Auto-heal: the maintenance scheduler notices a degraded shard and
// triggers the heal (journal compaction) itself — with exponential
// backoff while the underlying I/O condition persists, and prompt
// recovery once it clears. Regression for the ROADMAP follow-up where a
// degraded shard stayed read-only until an operator ran compact_journal
// by hand.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "ms/synthetic.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace spechd::serve {
namespace {

std::vector<ms::spectrum> sample_stream(std::size_t peptides = 24,
                                        std::uint64_t seed = 77) {
  ms::synthetic_config config;
  config.peptide_count = peptides;
  config.spectra_per_peptide_mean = 4.0;
  config.noise_peaks_per_spectrum = 20.0;
  config.seed = seed;
  return ms::generate_dataset(config).spectra;
}

serve_config autoheal_config(const std::string& journal_dir) {
  serve_config sc;
  sc.pipeline.encoder.dim = 1024;
  sc.pipeline.threads = 1;
  sc.shards = 1;
  sc.queue_capacity = 4;
  sc.journal.dir = journal_dir;
  sc.journal.fsync = false;
  sc.maintenance.enabled = true;
  sc.maintenance.interval = std::chrono::milliseconds{10};
  sc.maintenance.heal_backoff_initial = std::chrono::milliseconds{10};
  sc.maintenance.heal_backoff_max = std::chrono::milliseconds{100};
  return sc;
}

struct temp_dir {
  std::string path;
  explicit temp_dir(const std::string& name)
      : path((std::filesystem::temp_directory_path() /
              ("spechd_heal_" + name + "_" + std::to_string(::getpid()))).string()) {
    std::filesystem::remove_all(path);
  }
  ~temp_dir() { std::filesystem::remove_all(path); }
};

struct failpoint_guard {
  failpoint_guard() { util::registry().reset(); }
  ~failpoint_guard() { util::registry().reset(); }
};

/// Polls `predicate` until it holds or `deadline` elapses.
template <typename Predicate>
bool eventually(Predicate predicate,
                std::chrono::milliseconds deadline = std::chrono::milliseconds{5000}) {
  const auto stop = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < stop) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
  }
  return predicate();
}

TEST(AutoHeal, IntermittentAppendErrorHealsWithoutOperator) {
  failpoint_guard guard;
  temp_dir dir("intermittent");
  const auto stream = sample_stream();
  const std::size_t split = stream.size() / 2;

  auto sc = autoheal_config(dir.path);
  clustering_service service(sc);
  service.ingest({stream.begin(), stream.begin() + static_cast<std::ptrdiff_t>(split)});
  service.drain();

  // One hard append failure degrades the shard; the EIO condition clears
  // immediately (times1), so the very next scheduled heal should succeed.
  util::registry().arm_from_spec("journal.append.write=error:EIO@times1");
  service.ingest({stream.begin() + static_cast<std::ptrdiff_t>(split), stream.end()});
  EXPECT_THROW(service.drain(), spechd::error);
  // (No degraded assertion here: with a 10 ms interval the scheduler may
  // already have healed — the heals counter below proves the degradation
  // happened and was repaired.)

  // No compact_journal() call here: the scheduler must do it.
  ASSERT_TRUE(eventually([&] { return service.stats().degraded_shards == 0; }))
      << "shard never auto-healed";

  const auto maintenance = service.maintenance_stats();
  ASSERT_TRUE(maintenance.has_value());
  EXPECT_GE(maintenance->heal_attempts, 1u);
  EXPECT_GE(maintenance->heals, 1u);

  // Healed means writable again — the dropped half ingests cleanly now.
  service.ingest({stream.begin() + static_cast<std::ptrdiff_t>(split), stream.end()});
  service.drain();
  EXPECT_EQ(service.stats().degraded_shards, 0u);
  EXPECT_EQ(service.stats().record_count, stream.size());
}

TEST(AutoHeal, PersistentFailureBacksOffThenHealsWhenCleared) {
  failpoint_guard guard;
  temp_dir dir("persistent");
  const auto stream = sample_stream();
  const std::size_t split = stream.size() / 2;

  auto sc = autoheal_config(dir.path);
  clustering_service service(sc);
  service.ingest({stream.begin(), stream.begin() + static_cast<std::ptrdiff_t>(split)});
  service.drain();

  // Degrade the shard, and keep the heal path broken: every compaction
  // attempt fails at the snapshot rename (persistent EIO).
  util::registry().arm_from_spec("journal.append.write=error:EIO@times1");
  util::registry().arm_from_spec("snapshot.rename=error:EIO");
  service.ingest({stream.begin() + static_cast<std::ptrdiff_t>(split), stream.end()});
  EXPECT_THROW(service.drain(), spechd::error);
  EXPECT_EQ(service.stats().degraded_shards, 1u);

  // The scheduler keeps probing (bounded by backoff), without healing.
  ASSERT_TRUE(eventually([&] {
    const auto m = service.maintenance_stats();
    return m && m->heal_attempts >= 2;
  })) << "scheduler stopped attempting heals under a persistent failure";
  EXPECT_EQ(service.stats().degraded_shards, 1u);
  EXPECT_EQ(service.maintenance_stats()->heals, 0u);

  // Condition clears (disk back): the next backoff-paced attempt heals.
  util::registry().disarm("snapshot.rename");
  ASSERT_TRUE(eventually([&] { return service.stats().degraded_shards == 0; }))
      << "shard never healed after the I/O condition cleared";
  EXPECT_GE(service.maintenance_stats()->heals, 1u);

  service.ingest({stream.begin() + static_cast<std::ptrdiff_t>(split), stream.end()});
  service.drain();
  EXPECT_EQ(service.stats().record_count, stream.size());
}

TEST(AutoHeal, UnjournaledServiceDoesNotAttemptHeals) {
  // No journal ⇒ no compaction ⇒ no heal hook: the scheduler must not
  // spin heal attempts it can never satisfy.
  serve_config sc;
  sc.pipeline.encoder.dim = 1024;
  sc.pipeline.threads = 1;
  sc.shards = 1;
  sc.maintenance.enabled = true;
  sc.maintenance.interval = std::chrono::milliseconds{5};
  clustering_service service(sc);
  service.ingest(sample_stream(4, 3));
  service.drain();
  std::this_thread::sleep_for(std::chrono::milliseconds{100});
  const auto m = service.maintenance_stats();
  ASSERT_TRUE(m.has_value());
  EXPECT_GT(m->ticks, 0u);
  EXPECT_EQ(m->heal_attempts, 0u);
}

}  // namespace
}  // namespace spechd::serve
