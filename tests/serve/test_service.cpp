// Clustering service: sharded ingest must equal the sequential reference
// clusterer bucket-for-bucket; queries must be consistent with ingest and
// safe to run concurrently with it.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "core/incremental.hpp"
#include "ms/synthetic.hpp"
#include "serve/service.hpp"

namespace spechd::serve {
namespace {

std::vector<ms::spectrum> sample_stream(std::size_t peptides = 40, std::uint64_t seed = 11) {
  ms::synthetic_config config;
  config.peptide_count = peptides;
  config.spectra_per_peptide_mean = 4.0;
  config.noise_peaks_per_spectrum = 20.0;
  config.seed = seed;
  return ms::generate_dataset(config).spectra;
}

core::spechd_config small_config() {
  core::spechd_config config;
  config.encoder.dim = 1024;  // keep the suite fast; any dim works
  config.threads = 1;
  return config;
}

/// Per-bucket fingerprint: labels + cluster count + member HV words.
struct bucket_fingerprint {
  std::vector<std::int32_t> labels;
  std::int32_t cluster_count = 0;
  std::vector<std::vector<std::uint64_t>> member_words;

  friend bool operator==(const bucket_fingerprint&, const bucket_fingerprint&) = default;
};

std::map<std::int64_t, bucket_fingerprint> fingerprint(
    const std::vector<core::clusterer_state>& states) {
  std::map<std::int64_t, bucket_fingerprint> out;
  for (const auto& state : states) {
    for (const auto& bucket : state.buckets) {
      bucket_fingerprint fp;
      fp.labels = bucket.local_labels;
      fp.cluster_count = bucket.next_local;
      for (const auto idx : bucket.members) {
        const auto words = state.store.at(idx).hv.words();
        fp.member_words.emplace_back(words.begin(), words.end());
      }
      const bool inserted = out.emplace(bucket.key, std::move(fp)).second;
      EXPECT_TRUE(inserted) << "bucket " << bucket.key << " on two shards";
    }
  }
  return out;
}

TEST(ClusteringService, MatchesSequentialReferencePerBucket) {
  const auto stream = sample_stream();
  const auto config = small_config();

  core::incremental_clusterer reference(config);
  reference.add_spectra(stream);
  const auto expected = fingerprint({reference.export_state()});
  ASSERT_FALSE(expected.empty());

  for (const std::size_t shards : {1UL, 3UL}) {
    serve_config sc;
    sc.pipeline = config;
    sc.shards = shards;
    sc.queue_capacity = 4;
    clustering_service service(sc);

    // Uneven batches so batch boundaries cross buckets.
    for (std::size_t offset = 0; offset < stream.size(); offset += 33) {
      const auto end = std::min(offset + 33, stream.size());
      service.ingest({stream.begin() + static_cast<std::ptrdiff_t>(offset),
                      stream.begin() + static_cast<std::ptrdiff_t>(end)});
    }
    service.drain();

    EXPECT_EQ(fingerprint(service.export_states()), expected) << shards << " shards";
    EXPECT_EQ(service.stats().record_count, reference.size());
    EXPECT_EQ(service.stats().cluster_count, reference.cluster_count());
  }
}

TEST(ClusteringService, ClusteringAndStoreAlign) {
  const auto stream = sample_stream(20, 23);
  serve_config sc;
  sc.pipeline = small_config();
  sc.shards = 2;
  clustering_service service(sc);
  service.ingest(stream);
  const auto flat = service.clustering();
  const auto store = service.to_store();
  ASSERT_EQ(flat.labels.size(), store.size());
  for (const auto label : flat.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(static_cast<std::size_t>(label), flat.cluster_count);
  }
}

TEST(ClusteringService, QueryFindsIngestedSpectra) {
  const auto stream = sample_stream(24, 5);
  serve_config sc;
  sc.pipeline = small_config();
  sc.shards = 3;
  clustering_service service(sc);
  service.ingest(stream);
  service.drain();

  std::size_t encodable = 0;
  for (const auto& s : stream) {
    const auto r = service.query(s);
    if (!r.encodable) continue;  // preprocessing dropped it on ingest too
    ++encodable;
    // The spectrum itself is a stored member, so its nearest member
    // distance is exactly zero, whatever cluster the cut puts it in.
    EXPECT_EQ(r.nearest_member, 0.0);
    if (r.matched) {
      EXPECT_LE(r.distance, sc.pipeline.distance_threshold);
      EXPECT_GE(r.local_label, 0);
      EXPECT_GT(r.cluster_size, 0U);
    }
  }
  EXPECT_GT(encodable, 0U);
  EXPECT_EQ(encodable, service.stats().record_count);
}

TEST(ClusteringService, BundleModeQueryUsesRepresentatives) {
  // In bundle_representative mode, queries must apply the same criterion
  // as assignment: distance to each cluster's majority representative.
  const auto stream = sample_stream(24, 5);
  serve_config sc;
  sc.pipeline = small_config();
  sc.mode = core::assign_mode::bundle_representative;
  sc.shards = 2;
  clustering_service service(sc);
  service.ingest(stream);
  service.drain();

  // "Query then ingest" agreement: pushing the queried spectrum into a
  // clusterer holding exactly the service's state must join an existing
  // cluster iff the query reported a match. Each probe gets a fresh
  // clusterer (import of the same base state) so probes don't interact.
  core::incremental_clusterer base(sc.pipeline, core::assign_mode::bundle_representative);
  base.add_spectra(stream);
  const auto base_state = base.export_state();

  std::size_t matched = 0;
  for (std::size_t i = 0; i < stream.size(); i += 7) {
    const auto& s = stream[i];
    const auto r = service.query(s);
    if (!r.encodable) continue;
    core::incremental_clusterer probe(sc.pipeline,
                                      core::assign_mode::bundle_representative);
    probe.import_state(base_state);
    const auto report = probe.push(s);
    EXPECT_EQ(report.joined_existing == 1, r.matched) << "spectrum " << i;
    if (r.matched) {
      ++matched;
      EXPECT_LE(r.distance, sc.pipeline.distance_threshold);
    }
  }
  EXPECT_GT(matched, 0U);
}

TEST(ClusteringService, QueryAgainstEmptyServiceIsClean) {
  serve_config sc;
  sc.pipeline = small_config();
  sc.shards = 2;
  clustering_service service(sc);
  const auto stream = sample_stream(4, 3);
  const auto r = service.query(stream.front());
  EXPECT_TRUE(r.encodable);
  EXPECT_FALSE(r.matched);
  EXPECT_EQ(r.nearest_member, 1.0);
}

TEST(ClusteringService, ConcurrentIngestAndQueryIsSafe) {
  const auto stream = sample_stream(48, 29);
  serve_config sc;
  sc.pipeline = small_config();
  sc.shards = 2;
  sc.queue_capacity = 2;  // small queue: exercise producer backpressure
  clustering_service service(sc);

  std::atomic<bool> done{false};
  std::atomic<std::size_t> queries{0};
  // Two producers feed disjoint halves; two query threads hammer views the
  // whole time. This checks safety/liveness, not golden equality (with two
  // producers the interleaving — and thus the clustering — is unspecified).
  std::thread producer_a([&] {
    for (std::size_t i = 0; i < stream.size() / 2; i += 16) {
      const auto end = std::min(i + 16, stream.size() / 2);
      service.ingest({stream.begin() + static_cast<std::ptrdiff_t>(i),
                      stream.begin() + static_cast<std::ptrdiff_t>(end)});
    }
  });
  std::thread producer_b([&] {
    for (std::size_t i = stream.size() / 2; i < stream.size(); i += 16) {
      const auto end = std::min(i + 16, stream.size());
      service.ingest({stream.begin() + static_cast<std::ptrdiff_t>(i),
                      stream.begin() + static_cast<std::ptrdiff_t>(end)});
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      std::size_t i = static_cast<std::size_t>(t);
      while (!done.load()) {
        const auto r = service.query(stream[i % stream.size()]);
        if (r.matched) EXPECT_LE(r.distance, sc.pipeline.distance_threshold);
        i += 7;
        ++queries;
      }
    });
  }

  producer_a.join();
  producer_b.join();
  service.drain();
  done = true;
  for (auto& r : readers) r.join();

  EXPECT_GT(queries.load(), 0U);
  const auto stats = service.stats();
  EXPECT_EQ(stats.queue_depth, 0U);
  EXPECT_GT(stats.record_count, 0U);
  EXPECT_EQ(stats.ingested, stats.record_count);
  EXPECT_EQ(stats.ingested + stats.dropped, stream.size());

  // Views are published and internally consistent after the drain.
  for (const auto& shard_stat : stats.shards) {
    EXPECT_GT(shard_stat.view_epoch, 0U);
  }
}

// Query-visibility semantics under publish coalescing, pinned:
//  * publish_every = 1 (default): one view epoch per applied batch;
//  * publish_every = N: while a backlog exists, views republish only
//    every N-th batch — but a batch applied with an *empty* queue always
//    publishes, so an idle shard's view is current;
//  * drain() always flushes: after drain, the view reflects every
//    applied batch regardless of N.
TEST(ClusteringService, PublishEveryCoalescesViewRepublish) {
  const auto stream = sample_stream(12, 7);
  const auto config = small_config();
  const auto batch_of = [&](std::size_t i) {
    return std::vector<ms::spectrum>{stream.begin() + static_cast<std::ptrdiff_t>(i * 8),
                                     stream.begin() + static_cast<std::ptrdiff_t>(i * 8 + 8)};
  };

  for (const auto& [publish_every, expected_epochs] :
       std::vector<std::pair<std::size_t, std::uint64_t>>{{1, 3}, {3, 1}, {100, 1}}) {
    SCOPED_TRACE("publish_every=" + std::to_string(publish_every));
    shard sh(0, config, core::assign_mode::complete_linkage, /*queue_capacity=*/8,
             publish_every);

    // Park the writer on a blocking job so three batches pile up behind
    // it — the coalescing decision then sees a non-empty queue
    // deterministically (batch 1 and 2) and an empty one for batch 3.
    std::promise<void> release;
    std::atomic<bool> started{false};
    auto release_future = release.get_future().share();
    std::thread blocker([&] {
      sh.run_exclusive(
          [&](core::incremental_clusterer&) {
            started = true;
            release_future.wait();
          },
          /*republish=*/false);
    });
    while (!started) std::this_thread::yield();

    for (std::size_t b = 0; b < 3; ++b) sh.enqueue(batch_of(b));
    const auto epoch_before = sh.view()->epoch;
    release.set_value();
    blocker.join();
    sh.drain();

    // publish_every=1 → every batch published; 3 → exactly the third
    // (threshold); 100 → only the queue-empty flush on the third.
    EXPECT_EQ(sh.view()->epoch - epoch_before, expected_epochs);
    // Whatever the cadence, after drain the view is complete.
    EXPECT_EQ(sh.view()->record_count, sh.stats().ingested);
    EXPECT_GT(sh.view()->record_count, 0U);
  }
}

TEST(ClusteringService, DrainFlushesCoalescedPublishes) {
  // Service-level guarantee: with a large publish_every, drain() still
  // leaves views reflecting every ingested spectrum (flush on drain).
  const auto stream = sample_stream(16, 19);
  serve_config sc;
  sc.pipeline = small_config();
  sc.shards = 2;
  sc.publish_every = 1000;
  clustering_service service(sc);
  for (std::size_t offset = 0; offset < stream.size(); offset += 8) {
    const auto end = std::min(offset + 8, stream.size());
    service.ingest({stream.begin() + static_cast<std::ptrdiff_t>(offset),
                    stream.begin() + static_cast<std::ptrdiff_t>(end)});
  }
  service.drain();
  const auto stats = service.stats();
  EXPECT_EQ(stats.record_count, stats.ingested);
  EXPECT_GT(stats.record_count, 0U);

  // And queries see the drained state (same count as an always-publish
  // service would report).
  std::size_t hits = 0;
  for (const auto& s : stream) {
    const auto r = service.query(s);
    if (r.encodable) hits += r.nearest_member == 0.0 ? 1 : 0;
  }
  EXPECT_EQ(hits, stats.record_count);
}

TEST(ClusteringService, StatsAggregateShards) {
  const auto stream = sample_stream(16, 41);
  serve_config sc;
  sc.pipeline = small_config();
  sc.shards = 4;
  clustering_service service(sc);
  service.ingest(stream);
  service.drain();
  const auto stats = service.stats();
  ASSERT_EQ(stats.shards.size(), 4U);
  std::size_t records = 0;
  for (const auto& s : stats.shards) records += s.record_count;
  EXPECT_EQ(records, stats.record_count);
  EXPECT_EQ(stats.ingested + stats.dropped, stream.size());
}

}  // namespace
}  // namespace spechd::serve
