// Randomized fault torture of the durability tier.
//
// Every failpoint the serving/durability code registers — and random
// combinations of them — is armed across ingest/compact/recover cycles
// against a journaled, atomic-ingest service. The invariant asserted after
// every cycle is the one the subsystem promises:
//
//   * once faults clear, recovery ALWAYS succeeds (no directory is ever
//     bricked by a fault the service survived);
//   * recovery is deterministic: two recoveries of the same directory are
//     bit-identical;
//   * when no shard went `failed`, the recovered state equals the live
//     state exactly (degraded drops are clean: journal == applied).
//
// Failures during the armed phase are expected and must be *clean*: every
// error surfaces as a typed spechd::error (rejection, drain rethrow,
// compaction refusal) — never corruption, never a hang (a hang fails the
// suite via the ctest timeout).
//
// Seeding: the registry seed (probabilistic triggers) and the combination
// picker both derive from SPECHD_FAILPOINT_SEED when set, so a CI smoke
// run is reproducible with a fixed seed while local runs can explore.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "ms/synthetic.hpp"
#include "serve/journal.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace spechd::serve {
namespace {

std::vector<ms::spectrum> torture_stream() {
  ms::synthetic_config config;
  config.peptide_count = 12;
  config.spectra_per_peptide_mean = 3.0;
  config.noise_peaks_per_spectrum = 12.0;
  config.seed = 99;
  return ms::generate_dataset(config).spectra;
}

serve_config torture_config(const std::string& dir) {
  serve_config sc;
  sc.pipeline.encoder.dim = 1024;
  sc.pipeline.threads = 1;
  sc.shards = 2;
  sc.queue_capacity = 4;
  sc.journal.dir = dir;
  sc.journal.fsync = true;  // exercise every fsync site for real
  sc.atomic_ingest = true;  // multi-shard batches run the txn protocol
  return sc;
}

struct temp_dir {
  std::string path;
  explicit temp_dir(const std::string& name)
      : path((std::filesystem::temp_directory_path() /
              ("spechd_torture_" + name + "_" + std::to_string(::getpid()))).string()) {
    std::filesystem::remove_all(path);
  }
  ~temp_dir() { std::filesystem::remove_all(path); }
};

/// The sites the durability tier owns (unit tests in this binary register
/// `test.*` sites of their own — those are not torture targets).
std::vector<std::string> durability_sites() {
  std::vector<std::string> sites;
  for (const auto& name : util::registry().names()) {
    if (name.rfind("journal.", 0) == 0 || name.rfind("snapshot.", 0) == 0 ||
        name.rfind("dir.", 0) == 0) {
      sites.push_back(name);
    }
  }
  return sites;
}

/// One disarmed ingest → compact → recover cycle. Registration is lazy
/// (function-local statics), so this warm-up is what makes names()
/// complete before the torture loops enumerate it.
void warm_up_registry(const std::vector<ms::spectrum>& stream) {
  util::registry().reset();
  temp_dir dir("warmup");
  auto sc = torture_config(dir.path);
  {
    clustering_service service(sc);
    service.ingest(stream);
    service.drain();
    service.compact_journal();
  }
  clustering_service recovered(sc);  // registers the recovery read sites
}

struct cycle_outcome {
  bool constructed = false;  ///< recovery under injection succeeded
  bool exported = false;     ///< the live state could be read out
  bool any_failed = false;   ///< some shard ended the phase `failed`
  std::string live;          ///< canonical live state (when exported)
};

/// The armed phase of a cycle: drive the service against the directory
/// with the current arming, swallowing every spechd::error the injected
/// faults surface — each is the subsystem's *clean* failure path (ingest
/// rejection, drain rethrow, compaction refusal/abort). Anything else
/// (foreign exception, crash, hang) fails the suite.
cycle_outcome run_armed_phase(const serve_config& sc,
                              const std::vector<ms::spectrum>& stream) {
  cycle_outcome out;
  try {
    clustering_service service(sc);
    out.constructed = true;
    const std::size_t half = stream.size() / 2;
    for (std::size_t i = half; i < stream.size(); i += 9) {
      const auto stop = std::min(i + 9, stream.size());
      try {
        service.ingest({stream.begin() + static_cast<std::ptrdiff_t>(i),
                        stream.begin() + static_cast<std::ptrdiff_t>(stop)});
      } catch (const spechd::error&) {
      }
    }
    try {
      service.drain();
    } catch (const spechd::error&) {
    }
    try {
      service.compact_journal();
    } catch (const spechd::error&) {
    }
    try {
      service.drain();
    } catch (const spechd::error&) {
    }
    out.any_failed = service.stats().failed_shards != 0;
    if (!out.any_failed) {
      try {
        out.live = canonical_state(service.export_states());
        out.exported = true;
      } catch (const spechd::error&) {
        // An armed fsync/write site can still fail the export barrier;
        // the recovery checks below then run without a live reference.
      }
    }
  } catch (const spechd::error&) {
    // Construction (= recovery under injection) was the target. The
    // directory must still recover once the fault clears.
  }
  return out;
}

/// The post-fault invariant: disarmed recovery succeeds, is bit-identical
/// across two runs, and matches the live state when no shard failed.
void expect_clean_recovery(const serve_config& sc, const cycle_outcome& outcome) {
  util::registry().reset();
  std::string first;
  {
    clustering_service recovered(sc);
    first = canonical_state(recovered.export_states());
  }
  std::string second;
  {
    clustering_service recovered(sc);
    second = canonical_state(recovered.export_states());
  }
  EXPECT_EQ(first, second) << "recovery is not deterministic";
  if (outcome.exported && !outcome.any_failed) {
    EXPECT_EQ(first, outcome.live)
        << "recovered state diverged from the live state with no failed shard";
  }
}

/// A full torture cycle: seed the directory disarmed, run the armed phase
/// with `spec`, then assert the post-fault invariant.
void run_cycle(const std::string& spec, std::uint64_t seed, int cycle,
               const std::vector<ms::spectrum>& stream) {
  SCOPED_TRACE("spec=" + spec + " seed=" + std::to_string(seed));
  temp_dir dir("cycle_" + std::to_string(cycle));
  auto sc = torture_config(dir.path);
  util::registry().reset();
  {
    clustering_service service(sc);
    service.ingest({stream.begin(),
                    stream.begin() + static_cast<std::ptrdiff_t>(stream.size() / 2)});
    service.drain();
    service.compact_journal();  // a base snapshot + fresh generation to attack
  }
  util::registry().seed(seed);
  util::registry().arm_from_spec(spec);
  const auto outcome = run_armed_phase(sc, stream);
  expect_clean_recovery(sc, outcome);
}

std::uint64_t torture_seed() {
  if (const char* env = std::getenv("SPECHD_FAILPOINT_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20260808;
}

}  // namespace

TEST(FaultTorture, EveryRegisteredFailpointSurvivesIngestCompactRecover) {
  const auto stream = torture_stream();
  warm_up_registry(stream);

  // The complete injection surface of the durability tier. A new I/O site
  // belongs in this list (and a missing one here means the warm-up no
  // longer covers it — either way, look).
  const char* expected[] = {
      "dir.fsync",          "journal.append.write", "journal.fsync",
      "journal.header.write", "journal.open",       "journal.read.open",
      "journal.rollback.truncate", "snapshot.fsync", "snapshot.open",
      "snapshot.rename",    "snapshot.write",
  };
  for (const auto* name : expected) {
    EXPECT_TRUE(util::registry().known(name)) << "site never registered: " << name;
  }
  const auto sites = durability_sites();
  ASSERT_GE(sites.size(), std::size(expected));

  const char* actions[] = {"error:EIO@times1", "error:ENOSPC@p0.4", "short@times2",
                           "delay:1@times2"};
  const auto seed = torture_seed();
  int cycle = 0;
  for (const auto& site : sites) {
    for (const auto* action : actions) {
      run_cycle(site + "=" + action, seed + static_cast<std::uint64_t>(cycle), cycle,
                stream);
      ++cycle;
    }
  }
}

TEST(FaultTorture, RandomFailpointCombinationsStayConsistent) {
  const auto stream = torture_stream();
  warm_up_registry(stream);
  const auto sites = durability_sites();
  ASSERT_GE(sites.size(), 2U);

  const char* actions[] = {"error:EIO@p0.3", "error:ENOSPC@p0.3", "short@p0.3",
                           "delay:1@p0.3"};
  std::mt19937_64 rng(torture_seed());
  for (int iteration = 0; iteration < 6; ++iteration) {
    // 2–3 distinct sites armed at once, persistent probabilistic faults.
    auto shuffled = sites;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    const std::size_t count = 2 + rng() % 2;
    std::string spec;
    for (std::size_t i = 0; i < count; ++i) {
      if (!spec.empty()) spec += ";";
      spec += shuffled[i] + "=" + actions[rng() % std::size(actions)];
    }
    run_cycle(spec, rng(), 1000 + iteration, stream);
  }
}

}  // namespace spechd::serve
