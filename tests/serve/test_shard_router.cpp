// Shard router: bucket affinity (the sharded-service correctness
// invariant), determinism, and reasonable load spread.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ms/synthetic.hpp"
#include "preprocess/bucket.hpp"
#include "serve/shard_router.hpp"

namespace spechd::serve {
namespace {

TEST(ShardRouter, KeysMatchPreprocessBucketing) {
  preprocess::bucket_config bucketing;
  shard_router router(bucketing, 4);
  for (const double mz : {150.0, 523.77, 1499.9}) {
    for (const int charge : {0, 1, 2, 3}) {
      EXPECT_EQ(router.bucket_key(mz, charge),
                preprocess::bucket_index(mz, charge, bucketing));
    }
  }
}

TEST(ShardRouter, SameBucketAlwaysSameShard) {
  // The invariant everything else rests on: a bucket key maps to exactly
  // one shard, for any spectrum carrying it, across router instances.
  preprocess::bucket_config bucketing;
  shard_router a(bucketing, 5);
  shard_router b(bucketing, 5);
  for (std::int64_t key = -1000; key <= 5000; key += 13) {
    const auto shard = a.shard_of_key(key);
    EXPECT_LT(shard, 5U);
    EXPECT_EQ(shard, b.shard_of_key(key)) << key;
  }
}

TEST(ShardRouter, SingleShardTakesEverything) {
  shard_router router(preprocess::bucket_config{}, 1);
  for (std::int64_t key = 0; key < 100; ++key) EXPECT_EQ(router.shard_of_key(key), 0U);
}

TEST(ShardRouter, SpectrumRoutingUsesPrecursor) {
  shard_router router(preprocess::bucket_config{}, 8);
  ms::spectrum s;
  s.precursor_mz = 640.25;
  s.precursor_charge = 2;
  EXPECT_EQ(router.shard_of(s), router.shard_of_key(router.bucket_key(s)));
  // Peaks are irrelevant to routing.
  s.peaks.push_back({200.0, 1.0F});
  EXPECT_EQ(router.shard_of(s), router.shard_of_key(router.bucket_key(s)));
}

TEST(ShardRouter, AdjacentBucketsSpread) {
  // Consecutive keys (a narrow precursor-mass range) must not pile onto
  // one shard: over 256 consecutive keys and 4 shards, every shard should
  // see a healthy share (exact split would be 64 each).
  shard_router router(preprocess::bucket_config{}, 4);
  std::map<std::size_t, int> load;
  for (std::int64_t key = 700; key < 956; ++key) ++load[router.shard_of_key(key)];
  ASSERT_EQ(load.size(), 4U);
  for (const auto& [shard, count] : load) {
    EXPECT_GT(count, 32) << "shard " << shard;  // > half the fair share
    EXPECT_LT(count, 128) << "shard " << shard;  // < double the fair share
  }
}

TEST(ShardRouter, RealDatasetCoversAllShards) {
  ms::synthetic_config config;
  config.peptide_count = 64;
  config.spectra_per_peptide_mean = 2.0;
  config.seed = 17;
  const auto data = ms::generate_dataset(config);
  shard_router router(preprocess::bucket_config{}, 4);
  std::set<std::size_t> used;
  for (const auto& s : data.spectra) used.insert(router.shard_of(s));
  EXPECT_EQ(used.size(), 4U);
}

}  // namespace
}  // namespace spechd::serve
