// Snapshot/restore: resuming from a mid-stream snapshot must be
// bit-identical to a run that never stopped — across shard counts — and
// every corruption mode must be rejected before any state is trusted.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/incremental.hpp"
#include "ms/synthetic.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "util/error.hpp"

namespace spechd::serve {
namespace {

std::vector<ms::spectrum> sample_stream() {
  ms::synthetic_config config;
  config.peptide_count = 32;
  config.spectra_per_peptide_mean = 4.0;
  config.noise_peaks_per_spectrum = 20.0;
  config.seed = 77;
  return ms::generate_dataset(config).spectra;
}

core::spechd_config small_config() {
  core::spechd_config config;
  config.encoder.dim = 1024;
  config.threads = 1;
  return config;
}

serve_config make_serve_config(std::size_t shards, std::size_t threads = 1) {
  serve_config sc;
  sc.pipeline = small_config();
  sc.pipeline.threads = threads;
  sc.shards = shards;
  sc.queue_capacity = 4;
  return sc;
}

/// Temp file that cleans up after itself.
struct temp_path {
  std::string path;
  explicit temp_path(const std::string& name)
      : path((std::filesystem::temp_directory_path() /
              ("spechd_test_" + name + "_" + std::to_string(::getpid()))).string()) {}
  ~temp_path() { std::remove(path.c_str()); }
};

void ingest_in_batches(clustering_service& service, const std::vector<ms::spectrum>& stream,
                       std::size_t begin, std::size_t end, std::size_t batch = 17) {
  for (std::size_t i = begin; i < end; i += batch) {
    const auto stop = std::min(i + batch, end);
    service.ingest({stream.begin() + static_cast<std::ptrdiff_t>(i),
                    stream.begin() + static_cast<std::ptrdiff_t>(stop)});
  }
}

TEST(Snapshot, RestoreResumesBitIdentical) {
  const auto stream = sample_stream();
  const std::size_t split = stream.size() / 2;

  // Covers worker-thread counts {1, 4} inside the shard clusterers as well
  // as shard counts {1, 4}: parallelism must never change the state.
  for (const std::size_t threads : {1UL, 4UL}) {
    for (const std::size_t shards : {1UL, 4UL}) {
      SCOPED_TRACE(std::to_string(shards) + " shards, " + std::to_string(threads) +
                   " threads");
      // Uninterrupted run.
      clustering_service uninterrupted(make_serve_config(shards, threads));
      ingest_in_batches(uninterrupted, stream, 0, stream.size());
      const auto golden = canonical_state(uninterrupted.export_states());

      // Snapshot mid-stream, restore into a fresh service, resume.
      temp_path snap("resume_" + std::to_string(shards) + "_" + std::to_string(threads));
      {
        clustering_service first_half(make_serve_config(shards, threads));
        ingest_in_batches(first_half, stream, 0, split);
        first_half.snapshot_file(snap.path);
      }
      clustering_service resumed(make_serve_config(shards, threads));
      resumed.restore_file(snap.path);
      ingest_in_batches(resumed, stream, split, stream.size());

      EXPECT_EQ(canonical_state(resumed.export_states()), golden);
    }
  }
}

TEST(Snapshot, RestoreAcrossShardCounts) {
  // A snapshot taken with 4 shards restores onto 2 (and vice versa):
  // buckets are re-routed whole, so cluster state is unchanged. Scan
  // counters are shard-local, so compare without them.
  const auto stream = sample_stream();
  const std::size_t split = stream.size() / 2;

  clustering_service uninterrupted(make_serve_config(2));
  ingest_in_batches(uninterrupted, stream, 0, stream.size());
  const auto golden = canonical_state(uninterrupted.export_states(), /*include_scan=*/false);

  temp_path snap("reshard");
  {
    clustering_service four(make_serve_config(4));
    ingest_in_batches(four, stream, 0, split);
    four.snapshot_file(snap.path);
  }
  clustering_service two(make_serve_config(2));
  two.restore_file(snap.path);
  ingest_in_batches(two, stream, split, stream.size());

  EXPECT_EQ(canonical_state(two.export_states(), /*include_scan=*/false), golden);
}

TEST(Snapshot, RoundTripPreservesEverything) {
  const auto stream = sample_stream();
  clustering_service service(make_serve_config(3));
  service.ingest(stream);
  const auto before = service.export_states();

  temp_path snap("roundtrip");
  service.snapshot_file(snap.path);
  const auto data = read_snapshot_file(snap.path);
  EXPECT_EQ(data.identity, service.identity());
  ASSERT_EQ(data.shards.size(), 3U);
  EXPECT_EQ(canonical_state(data.shards), canonical_state(before));

  // Scan counters, labels, and metadata survive byte-for-byte.
  for (std::size_t s = 0; s < 3; ++s) {
    ASSERT_EQ(data.shards[s].store.size(), before[s].store.size());
    for (std::size_t i = 0; i < before[s].store.size(); ++i) {
      EXPECT_EQ(data.shards[s].store.at(i).hv, before[s].store.at(i).hv);
      EXPECT_EQ(data.shards[s].store.at(i).scan, before[s].store.at(i).scan);
      EXPECT_EQ(data.shards[s].store.at(i).label, before[s].store.at(i).label);
    }
  }
}

TEST(Snapshot, IdentityPeekMatches) {
  clustering_service service(make_serve_config(2));
  service.ingest(sample_stream());
  temp_path snap("peek");
  service.snapshot_file(snap.path);
  EXPECT_EQ(read_snapshot_identity_file(snap.path), service.identity());
}

TEST(Snapshot, CorruptionIsRejected) {
  clustering_service service(make_serve_config(2));
  service.ingest(sample_stream());
  temp_path snap("corrupt");
  service.snapshot_file(snap.path);

  std::ifstream in(snap.path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string original = buffer.str();
  ASSERT_GT(original.size(), 64U);

  const auto expect_rejected = [&](std::string bytes, const char* what) {
    std::ofstream out(snap.path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    clustering_service victim(make_serve_config(2));
    EXPECT_THROW(victim.restore_file(snap.path), parse_error) << what;
  };

  // Bad magic.
  {
    std::string bytes = original;
    bytes[0] = 'X';
    expect_rejected(bytes, "magic");
  }
  // Unsupported version.
  {
    std::string bytes = original;
    bytes[4] = 99;
    expect_rejected(bytes, "version");
  }
  // A flipped payload byte must fail the CRC.
  {
    std::string bytes = original;
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
    expect_rejected(bytes, "payload bit flip");
  }
  // Truncation (mid-payload and mid-CRC).
  expect_rejected(original.substr(0, original.size() / 2), "truncated payload");
  expect_rejected(original.substr(0, original.size() - 2), "truncated crc");

  // Config mismatch: a service with a different threshold must refuse.
  {
    std::ofstream out(snap.path, std::ios::binary | std::ios::trunc);
    out.write(original.data(), static_cast<std::streamsize>(original.size()));
    out.close();
    auto different = make_serve_config(2);
    different.pipeline.distance_threshold = 0.2;
    clustering_service victim(different);
    EXPECT_THROW(victim.restore_file(snap.path), parse_error);
  }
  // Preprocessing knobs aren't stored field by field but are covered by
  // the identity's pipeline digest: a service that would *encode* future
  // spectra differently (here: different quantisation bins) must refuse
  // even though dim/seed/threshold/bucketing all match.
  {
    auto different = make_serve_config(2);
    different.pipeline.preprocess.quantize.mz_bins = 17000;
    clustering_service victim(different);
    EXPECT_THROW(victim.restore_file(snap.path), parse_error);
  }
  {
    auto different = make_serve_config(2);
    different.pipeline.preprocess.top_k = 30;
    clustering_service victim(different);
    EXPECT_THROW(victim.restore_file(snap.path), parse_error);
  }
}

TEST(Snapshot, BundleModeRoundTripsAndResumes) {
  // bundle_representative state (per-cluster majority counters) is
  // rebuilt from the records on import; resume must still be exact.
  const auto stream = sample_stream();
  const std::size_t split = stream.size() / 2;
  auto sc = make_serve_config(2);
  sc.mode = core::assign_mode::bundle_representative;

  clustering_service uninterrupted(sc);
  ingest_in_batches(uninterrupted, stream, 0, stream.size());
  const auto golden = canonical_state(uninterrupted.export_states());

  temp_path snap("bundle");
  {
    clustering_service first_half(sc);
    ingest_in_batches(first_half, stream, 0, split);
    first_half.snapshot_file(snap.path);
  }
  clustering_service resumed(sc);
  resumed.restore_file(snap.path);
  ingest_in_batches(resumed, stream, split, stream.size());
  EXPECT_EQ(canonical_state(resumed.export_states()), golden);

  // A complete-linkage service must refuse a bundle-mode snapshot.
  clustering_service wrong_mode(make_serve_config(2));
  EXPECT_THROW(wrong_mode.restore_file(snap.path), parse_error);
}

TEST(Snapshot, ImportStateValidatesPartition) {
  // import_state is the last line of defence under restore: a state whose
  // buckets don't partition the records must be rejected untouched.
  const auto config = small_config();
  core::incremental_clusterer clusterer(config);
  clusterer.add_spectra(sample_stream());
  auto state = clusterer.export_state();
  ASSERT_FALSE(state.buckets.empty());

  {
    auto broken = state;
    broken.buckets[0].local_labels[0] = broken.buckets[0].next_local;  // label OOB
    core::incremental_clusterer fresh(config);
    EXPECT_THROW(fresh.import_state(std::move(broken)), spechd::error);
  }
  {
    auto broken = state;
    broken.buckets[0].members.pop_back();  // orphaned record
    broken.buckets[0].local_labels.pop_back();
    core::incremental_clusterer fresh(config);
    EXPECT_THROW(fresh.import_state(std::move(broken)), spechd::error);
  }
  {
    auto broken = state;
    broken.buckets[0].key += 1;  // key no longer matches the records
    core::incremental_clusterer fresh(config);
    EXPECT_THROW(fresh.import_state(std::move(broken)), spechd::error);
  }

  // And the intact state imports and keeps behaving identically.
  core::incremental_clusterer fresh(config);
  fresh.import_state(std::move(state));
  EXPECT_EQ(fresh.size(), clusterer.size());
  EXPECT_EQ(fresh.cluster_count(), clusterer.cluster_count());
  const auto more = sample_stream();
  core::update_report a = fresh.push(more.front());
  core::update_report b = clusterer.push(more.front());
  EXPECT_EQ(a.joined_existing, b.joined_existing);
  EXPECT_EQ(a.new_clusters, b.new_clusters);
}

TEST(Snapshot, RestoreReplacesExistingStateAndViews) {
  // Restoring onto a service that already holds *different* data must
  // fully replace it — including the published query views (no stale
  // buckets answering queries for spectra the restored state never saw).
  ms::synthetic_config other;
  other.peptide_count = 8;
  other.spectra_per_peptide_mean = 3.0;
  other.seed = 999;  // different library than sample_stream()
  const auto other_stream = ms::generate_dataset(other).spectra;
  const auto stream = sample_stream();

  temp_path snap("replace");
  {
    clustering_service source(make_serve_config(2));
    ingest_in_batches(source, stream, 0, stream.size());
    source.snapshot_file(snap.path);
  }

  clustering_service victim(make_serve_config(2));
  victim.ingest(other_stream);
  victim.drain();
  const auto before = victim.stats().record_count;
  ASSERT_GT(before, 0U);

  victim.restore_file(snap.path);

  // State equals the snapshot, not the union.
  clustering_service reference(make_serve_config(2));
  ingest_in_batches(reference, stream, 0, stream.size());
  EXPECT_EQ(canonical_state(victim.export_states()),
            canonical_state(reference.export_states()));

  // Published views reflect only restored buckets: every bucket key the
  // old data occupied but the snapshot does not must now miss.
  std::map<std::int64_t, bool> restored_keys;
  for (const auto& state : reference.export_states()) {
    for (const auto& bucket : state.buckets) restored_keys[bucket.key] = true;
  }
  serve_config sc = make_serve_config(2);
  shard_router router(sc.pipeline.preprocess.bucketing, 2);
  std::size_t stale_checked = 0;
  for (const auto& s : other_stream) {
    const auto key = router.bucket_key(s);
    if (restored_keys.count(key)) continue;  // bucket legitimately exists
    const auto r = victim.query(s);
    if (!r.encodable) continue;
    EXPECT_FALSE(r.matched) << "stale bucket " << key << " still answers";
    EXPECT_EQ(r.nearest_member, 1.0) << "stale bucket " << key << " still has members";
    ++stale_checked;
  }
  EXPECT_GT(stale_checked, 0U);
}

TEST(Snapshot, EmptyServiceRoundTrips) {
  clustering_service service(make_serve_config(2));
  temp_path snap("empty");
  service.snapshot_file(snap.path);
  clustering_service restored(make_serve_config(2));
  restored.restore_file(snap.path);
  EXPECT_EQ(restored.stats().record_count, 0U);
}

TEST(Snapshot, EmptyServiceRestoresAcrossShardCountsAndStaysUsable) {
  // Zero buckets exercises the re-routing restore path with nothing to
  // route; the restored service must then ingest exactly like a fresh one.
  const auto stream = sample_stream();
  temp_path snap("empty_reshard");
  {
    clustering_service empty(make_serve_config(4));
    empty.snapshot_file(snap.path);
  }
  clustering_service restored(make_serve_config(2));
  restored.restore_file(snap.path);
  EXPECT_EQ(restored.stats().record_count, 0U);
  ingest_in_batches(restored, stream, 0, stream.size());

  clustering_service fresh(make_serve_config(2));
  ingest_in_batches(fresh, stream, 0, stream.size());
  EXPECT_EQ(canonical_state(restored.export_states()),
            canonical_state(fresh.export_states()));
}

TEST(Snapshot, RestoreOntoMoreShardsThanBuckets) {
  // A narrow dataset (one peptide class) occupies only a handful of
  // precursor buckets; restoring onto far more shards than buckets must
  // leave some shards empty yet reproduce the exact per-bucket state and
  // resume bit-identically to an uninterrupted wide service.
  ms::synthetic_config narrow;
  narrow.peptide_count = 1;
  narrow.spectra_per_peptide_mean = 24.0;
  narrow.noise_peaks_per_spectrum = 20.0;
  narrow.seed = 5;
  const auto stream = ms::generate_dataset(narrow).spectra;
  const std::size_t split = stream.size() / 2;

  temp_path snap("fewbuckets");
  std::size_t buckets = 0;
  {
    clustering_service source(make_serve_config(2));
    ingest_in_batches(source, stream, 0, split);
    source.snapshot_file(snap.path);
    for (const auto& state : source.export_states()) buckets += state.buckets.size();
    ASSERT_GT(buckets, 0U);
  }
  const std::size_t wide = buckets + 4;  // strictly more shards than buckets

  clustering_service uninterrupted(make_serve_config(wide));
  ingest_in_batches(uninterrupted, stream, 0, stream.size());
  const auto golden =
      canonical_state(uninterrupted.export_states(), /*include_scan=*/false);

  clustering_service restored(make_serve_config(wide));
  restored.restore_file(snap.path);
  std::size_t empty_shards = 0;
  for (const auto& shard_stat : restored.stats().shards) {
    empty_shards += shard_stat.record_count == 0 ? 1 : 0;
  }
  EXPECT_GT(empty_shards, 0U) << "expected some of the " << wide
                              << " shards to hold none of the " << buckets << " buckets";
  ingest_in_batches(restored, stream, split, stream.size());
  EXPECT_EQ(canonical_state(restored.export_states(), /*include_scan=*/false), golden);
}

}  // namespace
}  // namespace spechd::serve
