// Cross-module integration tests: file IO -> pipeline -> consensus ->
// identification, exercising the same path the examples and benches use.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "core/spechd.hpp"
#include "metrics/ident.hpp"
#include "metrics/quality.hpp"
#include "ms/mgf.hpp"
#include "ms/mzml.hpp"
#include "ms/synthetic.hpp"

namespace spechd {
namespace {

class EndToEnd : public ::testing::Test {
protected:
  static const ms::labelled_dataset& dataset() {
    static const ms::labelled_dataset ds = [] {
      ms::synthetic_config c;
      c.peptide_count = 30;
      c.spectra_per_peptide_mean = 7.0;
      c.seed = 1234;
      return ms::generate_dataset(c);
    }();
    return ds;
  }

  std::filesystem::path temp_file(const std::string& name) {
    const auto dir = std::filesystem::temp_directory_path() / "spechd_tests";
    std::filesystem::create_directories(dir);
    return dir / name;
  }
};

TEST_F(EndToEnd, MgfRoundTripThenCluster) {
  const auto path = temp_file("roundtrip.mgf");
  ms::write_mgf_file(path.string(), dataset().spectra);
  const auto loaded = ms::read_mgf_file(path.string());
  ASSERT_EQ(loaded.size(), dataset().spectra.size());

  // Labels do not survive MGF (real-world condition); re-attach via order.
  auto spectra = loaded;
  for (std::size_t i = 0; i < spectra.size(); ++i) {
    spectra[i].label = dataset().spectra[i].label;
  }

  core::spechd_pipeline pipeline({});
  const auto from_file = pipeline.run(spectra);
  const auto from_memory = pipeline.run(dataset().spectra);
  EXPECT_EQ(from_file.clustering.cluster_count, from_memory.clustering.cluster_count);
  std::filesystem::remove(path);
}

TEST_F(EndToEnd, MzmlPathProducesSameClusterCount) {
  const auto path = temp_file("roundtrip.mzML");
  ms::write_mzml_file(path.string(), dataset().spectra);
  const auto loaded = ms::read_mzml_file(path.string());
  ASSERT_EQ(loaded.size(), dataset().spectra.size());

  core::spechd_pipeline pipeline({});
  const auto a = pipeline.run(loaded);
  const auto b = pipeline.run(dataset().spectra);
  EXPECT_EQ(a.clustering.cluster_count, b.clustering.cluster_count);
  std::filesystem::remove(path);
}

TEST_F(EndToEnd, ConsensusSpectraSearchableDownstream) {
  // The Fig. 11 path: cluster -> consensus -> library search -> peptides.
  core::spechd_pipeline pipeline({});
  const auto result = pipeline.run(dataset().spectra);

  metrics::library_search engine(dataset().library, {});
  const auto accepted = engine.search_batch(result.consensus);
  EXPECT_GT(accepted.size(), dataset().library.size() / 4)
      << "a healthy fraction of consensus spectra must identify";

  std::set<std::string> identified;
  for (const auto& psm : accepted) {
    identified.insert(engine.targets()[psm.library_index].sequence());
  }
  EXPECT_GT(identified.size(), dataset().library.size() / 4);
}

TEST_F(EndToEnd, ClusteringReducesSearchLoad) {
  // Sec. IV-E: consensus searching skips redundant spectra. The consensus
  // set must be materially smaller than the input.
  core::spechd_pipeline pipeline({});
  const auto result = pipeline.run(dataset().spectra);
  EXPECT_LT(result.consensus.size(), dataset().spectra.size());
}

TEST_F(EndToEnd, QualityStableAcrossThreadCounts) {
  core::spechd_config one_thread;
  one_thread.threads = 1;
  core::spechd_config many_threads;
  many_threads.threads = 8;
  const auto a = core::spechd_pipeline(one_thread).run(dataset().spectra);
  const auto b = core::spechd_pipeline(many_threads).run(dataset().spectra);
  // Bucket-parallel execution must not change the result.
  EXPECT_EQ(a.clustering.labels, b.clustering.labels);
}

TEST_F(EndToEnd, HarderDatasetStillBounded) {
  ms::synthetic_config hard;
  hard.peptide_count = 20;
  hard.spectra_per_peptide_mean = 5.0;
  hard.fragment_mz_sigma_ppm = 40.0;
  hard.peak_dropout = 0.35;
  hard.noise_peaks_per_spectrum = 40.0;
  hard.unlabelled_fraction = 0.15;
  hard.seed = 77;
  const auto ds = ms::generate_dataset(hard);

  std::vector<std::int32_t> truth;
  for (const auto& s : ds.spectra) truth.push_back(s.label);

  core::spechd_pipeline pipeline({});
  const auto result = pipeline.run(ds.spectra);
  const auto q = metrics::evaluate_clustering(truth, result.clustering);
  // Noisy data clusters less, but errors must stay controlled.
  EXPECT_LT(q.incorrect_ratio, 0.15);
}

}  // namespace
}  // namespace spechd
