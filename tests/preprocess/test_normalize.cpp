#include "preprocess/normalize.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace spechd::preprocess {
namespace {

ms::spectrum sample() {
  ms::spectrum s;
  s.peaks = {{100.0, 4.0F}, {200.0, 16.0F}, {300.0, 64.0F}};
  return s;
}

double l2_norm(const ms::spectrum& s) {
  double sum = 0.0;
  for (const auto& p : s.peaks) sum += static_cast<double>(p.intensity) * p.intensity;
  return std::sqrt(sum);
}

TEST(Normalize, SqrtScalingAppliesElementwise) {
  auto s = sample();
  normalize_config c;
  c.scaling = intensity_scaling::sqrt;
  c.unit_norm = false;
  normalize_spectrum(s, c);
  EXPECT_FLOAT_EQ(s.peaks[0].intensity, 2.0F);
  EXPECT_FLOAT_EQ(s.peaks[1].intensity, 4.0F);
  EXPECT_FLOAT_EQ(s.peaks[2].intensity, 8.0F);
}

TEST(Normalize, UnitNormGivesL2One) {
  auto s = sample();
  normalize_config c;
  c.scaling = intensity_scaling::none;
  normalize_spectrum(s, c);
  EXPECT_NEAR(l2_norm(s), 1.0, 1e-6);
}

TEST(Normalize, RankTransformOrdersByIntensity) {
  ms::spectrum s;
  s.peaks = {{100.0, 50.0F}, {200.0, 10.0F}, {300.0, 90.0F}};
  normalize_config c;
  c.scaling = intensity_scaling::rank;
  c.unit_norm = false;
  normalize_spectrum(s, c);
  EXPECT_FLOAT_EQ(s.peaks[0].intensity, 2.0F);  // middle
  EXPECT_FLOAT_EQ(s.peaks[1].intensity, 1.0F);  // weakest
  EXPECT_FLOAT_EQ(s.peaks[2].intensity, 3.0F);  // strongest
}

TEST(Normalize, RankPreservesMzOrder) {
  ms::spectrum s;
  s.peaks = {{100.0, 5.0F}, {200.0, 1.0F}};
  normalize_config c;
  c.scaling = intensity_scaling::rank;
  normalize_spectrum(s, c);
  EXPECT_TRUE(ms::peaks_sorted(s));
}

TEST(Normalize, EmptySpectrumIsSafe) {
  ms::spectrum s;
  normalize_config c;
  EXPECT_NO_THROW(normalize_spectrum(s, c));
}

TEST(Normalize, AllZeroIntensitiesSafe) {
  ms::spectrum s;
  s.peaks = {{100.0, 0.0F}, {200.0, 0.0F}};
  normalize_config c;
  c.scaling = intensity_scaling::none;
  EXPECT_NO_THROW(normalize_spectrum(s, c));
  EXPECT_FLOAT_EQ(s.peaks[0].intensity, 0.0F);
}

TEST(Normalize, DefaultConfigSqrtPlusUnitNorm) {
  auto s = sample();
  normalize_config c;
  normalize_spectrum(s, c);
  EXPECT_NEAR(l2_norm(s), 1.0, 1e-6);
  // sqrt compresses dynamic range: ratio of strongest to weakest shrinks
  // from 16x to 4x.
  EXPECT_NEAR(s.peaks[2].intensity / s.peaks[0].intensity, 4.0, 1e-4);
}

TEST(Normalize, BatchAppliesToAll) {
  std::vector<ms::spectrum> batch = {sample(), sample()};
  normalize_config c;
  normalize_spectra(batch, c);
  for (const auto& s : batch) EXPECT_NEAR(l2_norm(s), 1.0, 1e-6);
}

}  // namespace
}  // namespace spechd::preprocess
