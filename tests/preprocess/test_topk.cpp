#include "preprocess/topk.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace spechd::preprocess {
namespace {

ms::spectrum random_spectrum(std::size_t peaks, std::uint64_t seed) {
  xoshiro256ss rng(seed);
  ms::spectrum s;
  for (std::size_t i = 0; i < peaks; ++i) {
    s.peaks.push_back({rng.uniform(100.0, 1900.0),
                       static_cast<float>(rng.uniform(1.0, 1000.0))});
  }
  ms::sort_peaks(s);
  return s;
}

TEST(BitonicSort, SortsDescending) {
  std::vector<float> v = {3.0F, 1.0F, 4.0F, 1.5F, 9.0F, 2.6F, 5.0F};
  bitonic_sort_descending(v);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<>()));
  EXPECT_EQ(v.size(), 7U);  // padding removed
  EXPECT_FLOAT_EQ(v.front(), 9.0F);
}

TEST(BitonicSort, HandlesEmptyAndSingle) {
  std::vector<float> empty;
  bitonic_sort_descending(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<float> one = {5.0F};
  bitonic_sort_descending(one);
  EXPECT_EQ(one, std::vector<float>{5.0F});
}

TEST(BitonicSort, MatchesStdSortOnRandomInputs) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    xoshiro256ss rng(seed);
    std::vector<float> v;
    const std::size_t n = 1 + rng.bounded(200);
    for (std::size_t i = 0; i < n; ++i) {
      v.push_back(static_cast<float>(rng.uniform(-100.0, 100.0)));
    }
    auto expected = v;
    std::sort(expected.begin(), expected.end(), std::greater<>());
    bitonic_sort_descending(v);
    EXPECT_EQ(v, expected) << "seed " << seed;
  }
}

TEST(NetworkStats, PowerOfTwoFormula) {
  const auto st = bitonic_network_stats(1024);
  EXPECT_EQ(st.padded_n, 1024U);
  EXPECT_EQ(st.stages, 10U * 11U / 2U);
  EXPECT_EQ(st.comparators, st.stages * 512U);
}

TEST(NetworkStats, PadsToNextPowerOfTwo) {
  EXPECT_EQ(bitonic_network_stats(100).padded_n, 128U);
  EXPECT_EQ(bitonic_network_stats(129).padded_n, 256U);
}

TEST(NetworkStats, TrivialSizes) {
  EXPECT_EQ(bitonic_network_stats(0).stages, 0U);
  EXPECT_EQ(bitonic_network_stats(1).stages, 0U);
}

TEST(HeapTopK, KeepsStrongestAndRestoresMzOrder) {
  auto s = random_spectrum(100, 42);
  auto intensities = s.peaks;
  std::sort(intensities.begin(), intensities.end(),
            [](const ms::peak& a, const ms::peak& b) { return a.intensity > b.intensity; });
  const float kth = intensities[9].intensity;

  heap_topk(s, 10);
  ASSERT_EQ(s.peaks.size(), 10U);
  EXPECT_TRUE(ms::peaks_sorted(s));
  for (const auto& p : s.peaks) EXPECT_GE(p.intensity, kth);
}

TEST(HeapTopK, NoopWhenFewerPeaksThanK) {
  auto s = random_spectrum(5, 1);
  const auto before = s.peaks;
  heap_topk(s, 50);
  EXPECT_EQ(s.peaks, before);
}

TEST(HeapTopK, KZeroClears) {
  auto s = random_spectrum(5, 1);
  heap_topk(s, 0);
  EXPECT_TRUE(s.peaks.empty());
}

// Property: bitonic and heap selections agree on the kept intensity
// multiset for random spectra and several k.
struct topk_param {
  std::size_t peaks;
  std::size_t k;
  std::uint64_t seed;
};

class TopKEquivalence : public ::testing::TestWithParam<topk_param> {};

TEST_P(TopKEquivalence, BitonicMatchesHeap) {
  const auto [peaks, k, seed] = GetParam();
  auto a = random_spectrum(peaks, seed);
  auto b = a;
  heap_topk(a, k);
  bitonic_topk(b, k);
  ASSERT_EQ(a.peaks.size(), b.peaks.size());
  auto ia = a.peaks;
  auto ib = b.peaks;
  auto by_intensity = [](const ms::peak& x, const ms::peak& y) {
    return x.intensity < y.intensity;
  };
  std::sort(ia.begin(), ia.end(), by_intensity);
  std::sort(ib.begin(), ib.end(), by_intensity);
  for (std::size_t i = 0; i < ia.size(); ++i) {
    EXPECT_FLOAT_EQ(ia[i].intensity, ib[i].intensity);
  }
  EXPECT_TRUE(ms::peaks_sorted(b));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopKEquivalence,
    ::testing::Values(topk_param{10, 5, 1}, topk_param{64, 50, 2}, topk_param{65, 50, 3},
                      topk_param{200, 50, 4}, topk_param{1000, 150, 5},
                      topk_param{50, 50, 6}, topk_param{51, 50, 7},
                      topk_param{3, 2, 8}));

TEST(BitonicTopK, DuplicateIntensitiesKeepExactlyK) {
  ms::spectrum s;
  for (int i = 0; i < 20; ++i) s.peaks.push_back({100.0 + i, 5.0F});  // all equal
  bitonic_topk(s, 7);
  EXPECT_EQ(s.peaks.size(), 7U);
  // Deterministic tie-break: lowest m/z kept first.
  EXPECT_DOUBLE_EQ(s.peaks.front().mz, 100.0);
}

}  // namespace
}  // namespace spechd::preprocess
