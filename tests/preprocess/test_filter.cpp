#include "preprocess/filter.hpp"

#include <gtest/gtest.h>

namespace spechd::preprocess {
namespace {

ms::spectrum base_spectrum() {
  ms::spectrum s;
  s.precursor_mz = 500.0;
  s.precursor_charge = 2;
  // Ten informative peaks at 100 intensity, none inside the precursor
  // windows (500 for 2+, ~999 for the charge-reduced 1+).
  for (int i = 0; i < 10; ++i) s.peaks.push_back({150.0 + 40.0 * i, 100.0F});
  ms::sort_peaks(s);
  return s;
}

filter_config lenient() {
  filter_config c;
  c.min_peaks = 1;
  return c;
}

TEST(Filter, RemovesLowIntensityPeaks) {
  auto s = base_spectrum();
  s.peaks.push_back({700.5, 0.5F});  // 0.5% of base peak
  ms::sort_peaks(s);
  ASSERT_TRUE(filter_spectrum(s, lenient()));
  for (const auto& p : s.peaks) EXPECT_GE(p.intensity, 1.0F);
}

TEST(Filter, KeepsPeaksAtExactlyOnePercent) {
  auto s = base_spectrum();
  s.peaks.push_back({710.5, 1.0F});  // exactly 1%
  ms::sort_peaks(s);
  const std::size_t before = s.peaks.size();
  ASSERT_TRUE(filter_spectrum(s, lenient()));
  EXPECT_EQ(s.peaks.size(), before);
}

TEST(Filter, RemovesPrecursorPeak) {
  auto s = base_spectrum();
  s.peaks.push_back({500.2, 100.0F});  // within 1.5 Da of precursor
  ms::sort_peaks(s);
  ASSERT_TRUE(filter_spectrum(s, lenient()));
  for (const auto& p : s.peaks) {
    EXPECT_GT(std::abs(p.mz - 500.0), 1.0) << p.mz;
  }
}

TEST(Filter, RemovesChargeReducedPrecursor) {
  auto s = base_spectrum();  // neutral mass ~997.99
  const double singly = s.precursor_neutral_mass() + ms::proton_mass;  // ~999
  s.peaks.push_back({singly, 100.0F});
  ms::sort_peaks(s);
  ASSERT_TRUE(filter_spectrum(s, lenient()));
  for (const auto& p : s.peaks) {
    EXPECT_GT(std::abs(p.mz - singly), 1.0) << p.mz;
  }
}

TEST(Filter, RemovesOutOfWindowPeaks) {
  auto s = base_spectrum();
  s.peaks.push_back({50.0, 100.0F});
  s.peaks.push_back({1950.0, 100.0F});
  ms::sort_peaks(s);
  ASSERT_TRUE(filter_spectrum(s, lenient()));
  for (const auto& p : s.peaks) {
    EXPECT_GE(p.mz, 101.0);
    EXPECT_LE(p.mz, 1905.0);
  }
}

TEST(Filter, RejectsSpectrumWithTooFewPeaks) {
  ms::spectrum s;
  s.precursor_mz = 500.0;
  s.precursor_charge = 2;
  s.peaks = {{200.0, 10.0F}, {300.0, 10.0F}};
  filter_config c;
  c.min_peaks = 5;
  EXPECT_FALSE(filter_spectrum(s, c));
}

TEST(Filter, BatchDropsAndCounts) {
  std::vector<ms::spectrum> batch(3, base_spectrum());
  batch.push_back(ms::spectrum{});  // empty -> dropped
  filter_config c;
  c.min_peaks = 5;
  const auto dropped = filter_spectra(batch, c);
  EXPECT_EQ(dropped, 1U);
  EXPECT_EQ(batch.size(), 3U);
}

TEST(Filter, UnknownChargeStillFiltersPrecursorWindow) {
  auto s = base_spectrum();
  s.precursor_charge = 0;
  s.peaks.push_back({500.3, 100.0F});
  ms::sort_peaks(s);
  ASSERT_TRUE(filter_spectrum(s, lenient()));
  for (const auto& p : s.peaks) EXPECT_GT(std::abs(p.mz - 500.0), 1.0);
}

}  // namespace
}  // namespace spechd::preprocess
