#include "preprocess/window_filter.hpp"

#include <gtest/gtest.h>

#include <map>

#include "preprocess/pipeline.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace spechd::preprocess {
namespace {

ms::spectrum random_spectrum(std::size_t peaks, std::uint64_t seed) {
  xoshiro256ss rng(seed);
  ms::spectrum s;
  for (std::size_t i = 0; i < peaks; ++i) {
    s.peaks.push_back({rng.uniform(100.0, 1900.0),
                       static_cast<float>(rng.uniform(1.0, 1000.0))});
  }
  ms::sort_peaks(s);
  return s;
}

TEST(WindowTopK, RespectsPerWindowBudget) {
  auto s = random_spectrum(500, 1);
  window_filter_config c;
  c.window_da = 100.0;
  c.peaks_per_window = 4;
  window_topk(s, c);
  std::map<std::int64_t, std::size_t> per_window;
  for (const auto& p : s.peaks) {
    ++per_window[static_cast<std::int64_t>(p.mz / c.window_da)];
  }
  for (const auto& [window, count] : per_window) {
    EXPECT_LE(count, c.peaks_per_window) << "window " << window;
  }
}

TEST(WindowTopK, KeepsStrongestPerWindow) {
  ms::spectrum s;
  s.peaks = {{110.0, 1.0F}, {120.0, 9.0F}, {130.0, 5.0F},   // window 1
             {210.0, 2.0F}, {220.0, 8.0F}};                 // window 2
  window_filter_config c;
  c.window_da = 100.0;
  c.peaks_per_window = 1;
  window_topk(s, c);
  ASSERT_EQ(s.peaks.size(), 2U);
  EXPECT_FLOAT_EQ(s.peaks[0].intensity, 9.0F);
  EXPECT_FLOAT_EQ(s.peaks[1].intensity, 8.0F);
}

TEST(WindowTopK, PreservesMzOrder) {
  auto s = random_spectrum(300, 2);
  window_topk(s, {});
  EXPECT_TRUE(ms::peaks_sorted(s));
}

TEST(WindowTopK, SmallWindowsPassThrough) {
  ms::spectrum s;
  s.peaks = {{110.0, 1.0F}, {500.0, 2.0F}, {900.0, 3.0F}};
  window_filter_config c;
  c.peaks_per_window = 6;
  window_topk(s, c);
  EXPECT_EQ(s.peaks.size(), 3U);
}

TEST(WindowTopK, SurvivorCountMatchesExecution) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto s = random_spectrum(200 + 50 * seed, seed);
    window_filter_config c;
    c.window_da = 150.0;
    c.peaks_per_window = 5;
    const auto predicted = window_topk_survivors(s, c);
    window_topk(s, c);
    EXPECT_EQ(s.peaks.size(), predicted) << seed;
  }
}

TEST(WindowTopK, DegenerateConfigRejected) {
  ms::spectrum s;
  window_filter_config c;
  c.window_da = 0.0;
  EXPECT_THROW(window_topk(s, c), logic_error);
  c.window_da = 100.0;
  c.peaks_per_window = 0;
  EXPECT_THROW(window_topk(s, c), logic_error);
}

TEST(WindowTopK, BetterLowMzCoverageThanGlobalTopK) {
  // Construct a spectrum whose high-m/z half dominates in intensity; the
  // global selector starves the low half, the window selector does not.
  ms::spectrum s;
  for (int i = 0; i < 40; ++i) s.peaks.push_back({150.0 + i, 10.0F});
  for (int i = 0; i < 40; ++i) s.peaks.push_back({1000.0 + i, 1000.0F});
  ms::sort_peaks(s);

  auto global = s;
  heap_topk(global, 40);
  std::size_t global_low = 0;
  for (const auto& p : global.peaks) global_low += p.mz < 500.0 ? 1 : 0;

  auto windowed = s;
  window_filter_config c;
  c.window_da = 100.0;
  c.peaks_per_window = 10;
  window_topk(windowed, c);
  std::size_t window_low = 0;
  for (const auto& p : windowed.peaks) window_low += p.mz < 500.0 ? 1 : 0;

  EXPECT_EQ(global_low, 0U);
  EXPECT_GT(window_low, 0U);
}

TEST(WindowTopK, PipelineIntegration) {
  preprocess_config config;
  config.peak_selector = selector::window_topk;
  config.window.peaks_per_window = 5;
  std::vector<ms::spectrum> batch = {random_spectrum(400, 9)};
  batch[0].precursor_mz = 600.0;
  batch[0].precursor_charge = 2;
  const auto out = run_preprocessing(batch, config);
  ASSERT_EQ(out.spectra.size(), 1U);
  EXPECT_LT(out.total_peaks_after, 400U);
}

}  // namespace
}  // namespace spechd::preprocess
