#include "preprocess/bucket.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ms/spectrum.hpp"
#include "util/error.hpp"

namespace spechd::preprocess {
namespace {

quantized_spectrum qs(double precursor_mz, int charge) {
  quantized_spectrum q;
  q.precursor_mz = precursor_mz;
  q.precursor_charge = charge;
  return q;
}

TEST(BucketIndex, MatchesEquationOne) {
  bucket_config c;
  c.resolution = 1.0;
  // bucket = floor((500 - 1.00794) * 2 / 1.0) = floor(997.98412) = 997.
  EXPECT_EQ(bucket_index(500.0, 2, c), 997);
}

TEST(BucketIndex, ResolutionScalesIndex) {
  bucket_config c;
  c.resolution = 0.05;
  const auto fine = bucket_index(500.0, 2, c);
  c.resolution = 1.0;
  const auto coarse = bucket_index(500.0, 2, c);
  EXPECT_NEAR(static_cast<double>(fine) / 20.0, static_cast<double>(coarse), 1.0);
}

TEST(BucketIndex, ChargeMultiplies) {
  bucket_config c;
  c.resolution = 1.0;
  EXPECT_GT(bucket_index(500.0, 3, c), bucket_index(500.0, 2, c));
}

TEST(BucketIndex, UnknownChargeUsesFallback) {
  bucket_config c;
  c.resolution = 1.0;
  c.fallback_charge = 2;
  EXPECT_EQ(bucket_index(500.0, 0, c), bucket_index(500.0, 2, c));
}

TEST(BucketIndex, MonotoneInPrecursorMz) {
  bucket_config c;
  c.resolution = 0.5;
  std::int64_t prev = bucket_index(200.0, 2, c);
  for (double mz = 201.0; mz < 1000.0; mz += 13.7) {
    const auto b = bucket_index(mz, 2, c);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(BucketSpectra, GroupsSameKeyTogether) {
  bucket_config c;
  c.resolution = 1.0;
  // (400.1..400.3 - 1.00794) * 2 all floor to key 798; 600.0 floors to 1197.
  std::vector<quantized_spectrum> spectra = {
      qs(400.1, 2), qs(400.3, 2), qs(600.0, 2), qs(400.2, 2)};
  const auto buckets = bucket_spectra(spectra, c);
  ASSERT_EQ(buckets.size(), 2U);
  // Keys ascend; the 400-ish bucket comes first with 3 members.
  EXPECT_EQ(buckets[0].size(), 3U);
  EXPECT_EQ(buckets[1].size(), 1U);
}

TEST(BucketSpectra, KeysAscending) {
  bucket_config c;
  std::vector<quantized_spectrum> spectra = {qs(900.0, 2), qs(300.0, 2), qs(600.0, 2)};
  const auto buckets = bucket_spectra(spectra, c);
  ASSERT_EQ(buckets.size(), 3U);
  EXPECT_LT(buckets[0].key, buckets[1].key);
  EXPECT_LT(buckets[1].key, buckets[2].key);
}

TEST(BucketSpectra, EveryMemberAssignedExactlyOnce) {
  bucket_config c;
  c.resolution = 0.5;
  std::vector<quantized_spectrum> spectra;
  for (int i = 0; i < 100; ++i) spectra.push_back(qs(300.0 + i * 2.5, 2 + i % 2));
  const auto buckets = bucket_spectra(spectra, c);
  std::vector<bool> seen(spectra.size(), false);
  for (const auto& b : buckets) {
    for (const auto m : b.members) {
      EXPECT_FALSE(seen[m]);
      seen[m] = true;
    }
  }
  for (const auto s : seen) EXPECT_TRUE(s);
}

TEST(BucketSpectra, ZeroResolutionRejected) {
  bucket_config c;
  c.resolution = 0.0;
  std::vector<quantized_spectrum> spectra = {qs(500.0, 2)};
  EXPECT_THROW(bucket_spectra(spectra, c), logic_error);
}

TEST(BucketStats, SummaryValues) {
  std::vector<bucket> buckets(3);
  buckets[0].members = {0, 1, 2};
  buckets[1].members = {3};
  buckets[2].members = {4, 5};
  const auto st = summarize(buckets);
  EXPECT_EQ(st.bucket_count, 3U);
  EXPECT_EQ(st.largest, 3U);
  EXPECT_EQ(st.singletons, 1U);
  EXPECT_NEAR(st.mean_size, 2.0, 1e-12);
}

TEST(BucketStats, EmptyIsZero) {
  const auto st = summarize({});
  EXPECT_EQ(st.bucket_count, 0U);
  EXPECT_DOUBLE_EQ(st.mean_size, 0.0);
}

}  // namespace
}  // namespace spechd::preprocess
