#include "preprocess/quantize.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace spechd::preprocess {
namespace {

quantize_config small_config() {
  quantize_config c;
  c.mz_min = 100.0;
  c.mz_max = 1100.0;
  c.mz_bins = 1000;  // 1 Da bins
  c.intensity_levels = 10;
  return c;
}

TEST(QuantizeMz, EdgesClampToValidRange) {
  const auto c = small_config();
  EXPECT_EQ(quantize_mz(50.0, c), 0U);
  EXPECT_EQ(quantize_mz(100.0, c), 0U);
  EXPECT_EQ(quantize_mz(1100.0, c), 999U);
  EXPECT_EQ(quantize_mz(5000.0, c), 999U);
}

TEST(QuantizeMz, LinearInteriorMapping) {
  const auto c = small_config();
  EXPECT_EQ(quantize_mz(100.5, c), 0U);
  EXPECT_EQ(quantize_mz(101.0, c), 1U);
  EXPECT_EQ(quantize_mz(600.0, c), 500U);
}

TEST(QuantizeMz, MonotoneInMz) {
  const auto c = small_config();
  std::uint32_t prev = 0;
  for (double mz = 100.0; mz <= 1100.0; mz += 7.3) {
    const auto bin = quantize_mz(mz, c);
    EXPECT_GE(bin, prev);
    prev = bin;
  }
}

TEST(QuantizeIntensity, ZeroAndMax) {
  const auto c = small_config();
  EXPECT_EQ(quantize_intensity(0.0F, 100.0F, c), 0);
  EXPECT_EQ(quantize_intensity(100.0F, 100.0F, c), 9);
  EXPECT_EQ(quantize_intensity(150.0F, 100.0F, c), 9);  // clamp
}

TEST(QuantizeIntensity, ZeroBaseIsSafe) {
  const auto c = small_config();
  EXPECT_EQ(quantize_intensity(5.0F, 0.0F, c), 0);
}

TEST(QuantizeIntensity, LinearLevels) {
  const auto c = small_config();
  EXPECT_EQ(quantize_intensity(25.0F, 100.0F, c), 2);
  EXPECT_EQ(quantize_intensity(55.0F, 100.0F, c), 5);
}

TEST(QuantizeSpectrum, CarriesMetadata) {
  ms::spectrum s;
  s.precursor_mz = 523.5;
  s.precursor_charge = 2;
  s.label = 17;
  s.peaks = {{150.0, 10.0F}, {250.0, 100.0F}};
  const auto q = quantize_spectrum(s, 42, small_config());
  EXPECT_DOUBLE_EQ(q.precursor_mz, 523.5);
  EXPECT_EQ(q.precursor_charge, 2);
  EXPECT_EQ(q.label, 17);
  EXPECT_EQ(q.source_index, 42U);
  EXPECT_EQ(q.size(), 2U);
}

TEST(QuantizeSpectrum, DeduplicatesSameBinKeepingStrongest) {
  ms::spectrum s;
  s.peaks = {{150.1, 10.0F}, {150.4, 100.0F}, {250.0, 50.0F}};  // first two same 1 Da bin
  const auto q = quantize_spectrum(s, 0, small_config());
  ASSERT_EQ(q.size(), 2U);
  EXPECT_EQ(q.peaks[0].level, 9);  // strongest kept (100 = base peak)
}

TEST(QuantizeSpectrum, RejectsDegenerateConfig) {
  ms::spectrum s;
  quantize_config c = small_config();
  c.mz_bins = 1;
  EXPECT_THROW(quantize_spectrum(s, 0, c), logic_error);
  c = small_config();
  c.intensity_levels = 1;
  EXPECT_THROW(quantize_spectrum(s, 0, c), logic_error);
}

TEST(QuantizeBatch, PreservesOrderAndIndices) {
  std::vector<ms::spectrum> batch(3);
  for (int i = 0; i < 3; ++i) {
    batch[static_cast<std::size_t>(i)].peaks = {{200.0 + i, 10.0F}};
  }
  const auto qs = quantize_spectra(batch, small_config());
  ASSERT_EQ(qs.size(), 3U);
  for (std::uint32_t i = 0; i < 3; ++i) EXPECT_EQ(qs[i].source_index, i);
}

}  // namespace
}  // namespace spechd::preprocess
