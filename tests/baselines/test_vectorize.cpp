#include "baselines/vectorize.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace spechd::baselines {
namespace {

ms::spectrum sample() {
  ms::spectrum s;
  s.peaks = {{150.0, 4.0F}, {500.0, 16.0F}, {1200.0, 64.0F}};
  return s;
}

TEST(Vectorize, UnitNorm) {
  const auto v = vectorize(sample(), {});
  double norm = 0.0;
  for (const auto& [bin, w] : v.entries) norm += static_cast<double>(w) * w;
  EXPECT_NEAR(norm, 1.0, 1e-6);
}

TEST(Vectorize, BinsSortedAndDeduplicated) {
  ms::spectrum s;
  s.peaks = {{150.0, 1.0F}, {150.2, 1.0F}, {900.0, 1.0F}};
  vectorize_config c;
  c.bin_width = 0.5;
  const auto v = vectorize(s, c);
  EXPECT_EQ(v.entries.size(), 2U);  // first two share a 0.5-wide bin
  EXPECT_LT(v.entries[0].first, v.entries[1].first);
}

TEST(Vectorize, OutOfWindowDropped) {
  ms::spectrum s;
  s.peaks = {{50.0, 1.0F}, {500.0, 1.0F}, {3000.0, 1.0F}};
  const auto v = vectorize(s, {});
  EXPECT_EQ(v.entries.size(), 1U);
}

TEST(Cosine, SelfSimilarityIsOne) {
  const auto v = vectorize(sample(), {});
  EXPECT_NEAR(cosine(v, v), 1.0, 1e-6);
}

TEST(Cosine, DisjointIsZero) {
  ms::spectrum a;
  a.peaks = {{150.0, 1.0F}};
  ms::spectrum b;
  b.peaks = {{900.0, 1.0F}};
  EXPECT_DOUBLE_EQ(cosine(vectorize(a, {}), vectorize(b, {})), 0.0);
}

TEST(Cosine, SymmetricAndBounded) {
  ms::spectrum a;
  a.peaks = {{150.0, 2.0F}, {400.0, 1.0F}};
  ms::spectrum b;
  b.peaks = {{150.3, 3.0F}, {800.0, 1.0F}};
  const auto va = vectorize(a, {});
  const auto vb = vectorize(b, {});
  EXPECT_NEAR(cosine(va, vb), cosine(vb, va), 1e-12);
  EXPECT_GE(cosine(va, vb), 0.0);
  EXPECT_LE(cosine(va, vb), 1.0 + 1e-12);
}

TEST(Lsh, DeterministicSignature) {
  const auto v = vectorize(sample(), {});
  EXPECT_EQ(lsh_signature(v, 16, 0, 42, 0), lsh_signature(v, 16, 0, 42, 0));
}

TEST(Lsh, DifferentTablesDiffer) {
  const auto v = vectorize(sample(), {});
  EXPECT_NE(lsh_signature(v, 16, 0, 42, 0), lsh_signature(v, 16, 1, 42, 0));
}

TEST(Lsh, IdenticalVectorsSameSignature) {
  const auto a = vectorize(sample(), {});
  const auto b = vectorize(sample(), {});
  EXPECT_EQ(lsh_signature(a, 12, 0, 7, 0), lsh_signature(b, 12, 0, 7, 0));
}

TEST(Lsh, SignatureFitsRequestedBits) {
  const auto v = vectorize(sample(), {});
  const auto sig = lsh_signature(v, 8, 0, 7, 0);
  EXPECT_LT(sig, 256U);
}

TEST(DenseEmbedding, UnitNormAndDeterministic) {
  const auto v = vectorize(sample(), {});
  const auto e1 = dense_embedding(v, 32, 9, 0);
  const auto e2 = dense_embedding(v, 32, 9, 0);
  ASSERT_EQ(e1.size(), 32U);
  EXPECT_EQ(e1, e2);
  double norm = 0.0;
  for (const auto x : e1) norm += static_cast<double>(x) * x;
  EXPECT_NEAR(norm, 1.0, 1e-5);
}

TEST(DenseEmbedding, SimilarSpectraCloserThanDissimilar) {
  ms::spectrum a = sample();
  ms::spectrum b = sample();
  b.peaks[0].mz += 0.1;  // tiny shift, same bins mostly
  ms::spectrum c;
  c.peaks = {{300.0, 5.0F}, {700.0, 9.0F}, {1500.0, 2.0F}};
  const auto ea = dense_embedding(vectorize(a, {}), 32, 9, 0);
  const auto eb = dense_embedding(vectorize(b, {}), 32, 9, 0);
  const auto ec = dense_embedding(vectorize(c, {}), 32, 9, 0);
  EXPECT_LT(euclidean(ea, eb), euclidean(ea, ec));
}

TEST(Euclidean, KnownValue) {
  EXPECT_NEAR(euclidean({0.0F, 3.0F}, {4.0F, 0.0F}), 5.0, 1e-6);
  EXPECT_DOUBLE_EQ(euclidean({1.0F}, {1.0F}), 0.0);
}

}  // namespace
}  // namespace spechd::baselines
