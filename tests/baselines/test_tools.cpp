#include "baselines/tools.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string_view>

#include "metrics/quality.hpp"
#include "ms/synthetic.hpp"

namespace spechd::baselines {
namespace {

const ms::labelled_dataset& test_dataset() {
  static const ms::labelled_dataset ds = [] {
    ms::synthetic_config c;
    c.peptide_count = 30;
    c.spectra_per_peptide_mean = 6.0;
    c.noise_peaks_per_spectrum = 8.0;
    c.seed = 21;
    return ms::generate_dataset(c);
  }();
  return ds;
}

std::vector<std::int32_t> truth_labels(const ms::labelled_dataset& ds) {
  std::vector<std::int32_t> t;
  t.reserve(ds.spectra.size());
  for (const auto& s : ds.spectra) t.push_back(s.label);
  return t;
}

TEST(Baselines, AllToolsConstructibleWithNames) {
  const auto tools = make_all_baselines();
  ASSERT_EQ(tools.size(), 8U);
  std::set<std::string_view> names;
  for (const auto& t : tools) names.insert(t->name());
  EXPECT_EQ(names.size(), 8U);  // distinct names
  EXPECT_TRUE(names.count("HyperSpec-HAC"));
  EXPECT_TRUE(names.count("falcon"));
  EXPECT_TRUE(names.count("GLEAMS"));
  EXPECT_TRUE(names.count("MaRaCluster"));
}

TEST(Baselines, LabelVectorCoversEveryInputSpectrum) {
  const auto& ds = test_dataset();
  for (const auto& tool : make_all_baselines()) {
    const auto c = tool->run(ds.spectra, 0.5);
    ASSERT_EQ(c.labels.size(), ds.spectra.size()) << tool->name();
    for (const auto l : c.labels) {
      ASSERT_LT(l, static_cast<std::int32_t>(c.cluster_count)) << tool->name();
    }
  }
}

// Each baseline must cluster clearly better than chance on easy synthetic
// data: at moderate aggressiveness it should form some true clusters with
// bounded ICR.
class BaselineQuality : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BaselineQuality, ClustersAboveChanceWithBoundedError) {
  const auto tools = make_all_baselines();
  const auto& tool = tools[GetParam()];
  const auto& ds = test_dataset();
  const auto truth = truth_labels(ds);

  const auto clustering = tool->run(ds.spectra, 0.5);
  const auto q = metrics::evaluate_clustering(truth, clustering);
  EXPECT_GT(q.clustered_ratio, 0.10) << tool->name();
  EXPECT_LT(q.incorrect_ratio, 0.30) << tool->name();
}

INSTANTIATE_TEST_SUITE_P(AllTools, BaselineQuality, ::testing::Range<std::size_t>(0, 8));

TEST(Baselines, AggressivenessIncreasesClusteredRatio) {
  const auto& ds = test_dataset();
  const auto truth = truth_labels(ds);
  const auto hyperspec = make_hyperspec(true);
  const auto low = metrics::evaluate_clustering(truth, hyperspec->run(ds.spectra, 0.05));
  const auto high = metrics::evaluate_clustering(truth, hyperspec->run(ds.spectra, 0.9));
  EXPECT_GE(high.clustered_ratio, low.clustered_ratio);
}

TEST(Baselines, DbscanFlavourDiffersFromHac) {
  const auto& ds = test_dataset();
  const auto hac = make_hyperspec(true)->run(ds.spectra, 0.5);
  const auto db = make_hyperspec(false)->run(ds.spectra, 0.5);
  // Different algorithms; cluster counts should generally differ.
  EXPECT_NE(hac.cluster_count, db.cluster_count);
}

TEST(Baselines, EmptyInputSafe) {
  for (const auto& tool : make_all_baselines()) {
    const auto c = tool->run({}, 0.5);
    EXPECT_TRUE(c.labels.empty()) << tool->name();
  }
}

}  // namespace
}  // namespace spechd::baselines
