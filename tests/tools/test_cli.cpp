// Drives the actual `spechd` binary (path injected by CMake as
// SPECHD_CLI_PATH): unknown subcommands/flags must print usage and exit
// non-zero, the serve subcommand's ingest → query → snapshot → restore
// loop must work end to end from the shell, and the search subcommand's
// library build/query path must diagnose operator errors (missing or
// corrupt library, --topk 0) with exit code 2 rather than crashing.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#ifdef SPECHD_CLI_PATH

namespace {

struct command_result {
  int exit_code = -1;
  std::string output;  // stdout + stderr combined
};

command_result run_cli(const std::string& args) {
  const std::string command = std::string(SPECHD_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  command_result result;
  if (!pipe) return result;
  char buffer[4096];
  while (std::fgets(buffer, sizeof(buffer), pipe)) result.output += buffer;
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string temp_file(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("spechd_cli_test_" + std::to_string(::getpid()) + "_" + name)).string();
}

TEST(Cli, NoArgumentsPrintsUsageAndFails) {
  const auto r = run_cli("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownSubcommandFails) {
  const auto r = run_cli("frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown command: frobnicate"), std::string::npos);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownFlagFails) {
  const auto r = run_cli("cluster --bogus-flag input.mgf");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown option '--bogus-flag'"), std::string::npos);
}

TEST(Cli, StrayPositionalFails) {
  const auto r = run_cli("model extra-arg");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unexpected argument 'extra-arg'"), std::string::npos);
}

TEST(Cli, MissingInputFileIsAnErrorNotACrash) {
  const auto r = run_cli("info /nonexistent/file.mgf");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  const auto r = run_cli("help");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Cli, ServeRequiresWork) {
  const auto r = run_cli("serve");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("nothing to do"), std::string::npos);
}

TEST(Cli, ServeRestoreMissingSnapshotFailsWithDiagnostic) {
  const auto r = run_cli("serve --restore /nonexistent/state.sphsnap --query x.mgf");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cannot restore from"), std::string::npos);
}

TEST(Cli, ServeRestoreCorruptSnapshotFailsWithDiagnostic) {
  const std::string snap = temp_file("corrupt.sphsnap");
  std::ofstream(snap, std::ios::binary) << "this is not a snapshot";
  const auto r = run_cli("serve --restore " + snap + " --query x.mgf");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cannot restore from"), std::string::npos);
  std::remove(snap.c_str());
}

TEST(Cli, RecoverMissingDirFailsWithDiagnostic) {
  const auto r = run_cli("recover --journal-dir /nonexistent/journal");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("no journal state found"), std::string::npos);
}

TEST(Cli, RecoverRequiresJournalDir) {
  const auto r = run_cli("recover");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("missing --journal-dir"), std::string::npos);
}

TEST(Cli, JournaledServeThenRecoverRoundTrip) {
  const std::string mgf = temp_file("jdata.mgf");
  const std::string dir = temp_file("jdir");
  std::filesystem::remove_all(dir);

  const auto synth = run_cli("synth -o " + mgf + " --peptides 12 --seed 21");
  ASSERT_EQ(synth.exit_code, 0) << synth.output;

  const auto serve =
      run_cli("serve --shards 2 --batch 16 --journal-dir " + dir + " --ingest " + mgf);
  EXPECT_EQ(serve.exit_code, 0) << serve.output;
  EXPECT_NE(serve.output.find("journal:"), std::string::npos);

  const auto recover = run_cli("recover --journal-dir " + dir + " --query " + mgf);
  EXPECT_EQ(recover.exit_code, 0) << recover.output;
  EXPECT_NE(recover.output.find("recovered"), std::string::npos);
  EXPECT_NE(recover.output.find("batches replayed"), std::string::npos);
  EXPECT_NE(recover.output.find("latency p99"), std::string::npos);

  // Resume without repeating the original flags: the journal identity
  // (including the shard count) is adopted from the directory.
  const auto resume = run_cli("serve --journal-dir " + dir + " --ingest " + mgf);
  EXPECT_EQ(resume.exit_code, 0) << resume.output;
  EXPECT_NE(resume.output.find("recovered"), std::string::npos);

  std::remove(mgf.c_str());
  std::filesystem::remove_all(dir);
}

TEST(Cli, SearchRequiresWork) {
  const auto r = run_cli("search");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("nothing to do"), std::string::npos);
}

TEST(Cli, SearchTopkZeroFailsWithDiagnostic) {
  const auto r = run_cli("search --library lib.sphlib --query x.mgf --topk 0");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--topk must be >= 1"), std::string::npos);
}

TEST(Cli, ClientSearchTopkZeroFailsWithDiagnostic) {
  // Validation runs before any connection is attempted, so the bogus
  // address is never dialled.
  const auto r =
      run_cli("client --connect 127.0.0.1:1 --search x.mgf --topk 0");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--topk must be >= 1"), std::string::npos);
}

TEST(Cli, SearchMissingLibraryFailsWithDiagnostic) {
  const auto r =
      run_cli("search --library /nonexistent/lib.sphlib --query x.mgf");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cannot load library"), std::string::npos);
}

TEST(Cli, SearchCorruptLibraryFailsWithDiagnostic) {
  const std::string lib = temp_file("corrupt.sphlib");
  std::ofstream(lib, std::ios::binary) << "this is not a spectral library";
  const auto r = run_cli("search --library " + lib + " --query x.mgf");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cannot load library"), std::string::npos);
  std::remove(lib.c_str());
}

TEST(Cli, SearchBuildNeedsExactlyOneSource) {
  const auto none = run_cli("search --build lib.sphlib");
  EXPECT_EQ(none.exit_code, 2);
  EXPECT_NE(none.output.find("exactly one of --fasta or --spectra"),
            std::string::npos);
  const auto both =
      run_cli("search --build lib.sphlib --fasta a.fasta --spectra b.mgf");
  EXPECT_EQ(both.exit_code, 2);
  EXPECT_NE(both.output.find("exactly one of --fasta or --spectra"),
            std::string::npos);
}

TEST(Cli, SearchBuildAndQueryRoundTrip) {
  const std::string mgf = temp_file("search_data.mgf");
  const std::string lib = temp_file("search_lib.sphlib");

  const auto synth = run_cli("synth -o " + mgf + " --peptides 12 --seed 33");
  ASSERT_EQ(synth.exit_code, 0) << synth.output;

  const auto build = run_cli("search --build " + lib + " --spectra " + mgf);
  EXPECT_EQ(build.exit_code, 0) << build.output;
  EXPECT_NE(build.output.find("built spectral library"), std::string::npos);

  // Querying the library with its own source spectra must self-match at
  // Hamming 0 somewhere in the report.
  const auto query = run_cli("search --library " + lib + " --query " + mgf +
                             " --topk 3 --tolerance 1.5");
  EXPECT_EQ(query.exit_code, 0) << query.output;
  EXPECT_NE(query.output.find("query 0"), std::string::npos);
  EXPECT_NE(query.output.find("hamming=0"), std::string::npos);

  std::remove(mgf.c_str());
  std::remove(lib.c_str());
}

TEST(Cli, SearchBuildFromFastaRoundTrip) {
  const std::string fasta = temp_file("search_db.fasta");
  const std::string lib = temp_file("search_fasta_lib.sphlib");
  std::ofstream(fasta)
      << ">sp|TEST1 example protein\n"
      << "MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFKDLGEENFKALVLIAFAQYLQQCPF\n";

  const auto build = run_cli("search --build " + lib + " --fasta " + fasta +
                             " --missed 1 --charges 2,3");
  EXPECT_EQ(build.exit_code, 0) << build.output;
  EXPECT_NE(build.output.find("built spectral library"), std::string::npos);

  const auto empty_charges =
      run_cli("search --build " + lib + " --fasta " + fasta + " --charges ,");
  EXPECT_EQ(empty_charges.exit_code, 2);
  EXPECT_NE(empty_charges.output.find("--charges needs"), std::string::npos);

  std::remove(fasta.c_str());
  std::remove(lib.c_str());
}

TEST(Cli, ServeIngestQuerySnapshotRestoreRoundTrip) {
  const std::string mgf = temp_file("data.mgf");
  const std::string snap = temp_file("state.sphsnap");

  const auto synth = run_cli("synth -o " + mgf + " --peptides 12 --seed 9");
  ASSERT_EQ(synth.exit_code, 0) << synth.output;

  const auto serve = run_cli("serve --shards 2 --batch 16 --ingest " + mgf +
                             " --query " + mgf + " --snapshot " + snap);
  EXPECT_EQ(serve.exit_code, 0) << serve.output;
  EXPECT_NE(serve.output.find("ingested"), std::string::npos);
  EXPECT_NE(serve.output.find("latency p99"), std::string::npos);
  EXPECT_NE(serve.output.find("snapshot written"), std::string::npos);

  const auto restored = run_cli("serve --restore " + snap + " --query " + mgf);
  EXPECT_EQ(restored.exit_code, 0) << restored.output;
  EXPECT_NE(restored.output.find("restored"), std::string::npos);
  EXPECT_NE(restored.output.find("latency p99"), std::string::npos);

  std::remove(mgf.c_str());
  std::remove(snap.c_str());
}

}  // namespace

#else
TEST(Cli, DISABLED_BinaryPathNotConfigured) {}
#endif
