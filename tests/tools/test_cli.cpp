// Drives the actual `spechd` binary (path injected by CMake as
// SPECHD_CLI_PATH): unknown subcommands/flags must print usage and exit
// non-zero, and the serve subcommand's ingest → query → snapshot → restore
// loop must work end to end from the shell, not just in-process.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#ifdef SPECHD_CLI_PATH

namespace {

struct command_result {
  int exit_code = -1;
  std::string output;  // stdout + stderr combined
};

command_result run_cli(const std::string& args) {
  const std::string command = std::string(SPECHD_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  command_result result;
  if (!pipe) return result;
  char buffer[4096];
  while (std::fgets(buffer, sizeof(buffer), pipe)) result.output += buffer;
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string temp_file(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("spechd_cli_test_" + std::to_string(::getpid()) + "_" + name)).string();
}

TEST(Cli, NoArgumentsPrintsUsageAndFails) {
  const auto r = run_cli("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownSubcommandFails) {
  const auto r = run_cli("frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown command: frobnicate"), std::string::npos);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownFlagFails) {
  const auto r = run_cli("cluster --bogus-flag input.mgf");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown option '--bogus-flag'"), std::string::npos);
}

TEST(Cli, StrayPositionalFails) {
  const auto r = run_cli("model extra-arg");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unexpected argument 'extra-arg'"), std::string::npos);
}

TEST(Cli, MissingInputFileIsAnErrorNotACrash) {
  const auto r = run_cli("info /nonexistent/file.mgf");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  const auto r = run_cli("help");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Cli, ServeRequiresWork) {
  const auto r = run_cli("serve");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("nothing to do"), std::string::npos);
}

TEST(Cli, ServeRestoreMissingSnapshotFailsWithDiagnostic) {
  const auto r = run_cli("serve --restore /nonexistent/state.sphsnap --query x.mgf");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cannot restore from"), std::string::npos);
}

TEST(Cli, ServeRestoreCorruptSnapshotFailsWithDiagnostic) {
  const std::string snap = temp_file("corrupt.sphsnap");
  std::ofstream(snap, std::ios::binary) << "this is not a snapshot";
  const auto r = run_cli("serve --restore " + snap + " --query x.mgf");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cannot restore from"), std::string::npos);
  std::remove(snap.c_str());
}

TEST(Cli, RecoverMissingDirFailsWithDiagnostic) {
  const auto r = run_cli("recover --journal-dir /nonexistent/journal");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("no journal state found"), std::string::npos);
}

TEST(Cli, RecoverRequiresJournalDir) {
  const auto r = run_cli("recover");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("missing --journal-dir"), std::string::npos);
}

TEST(Cli, JournaledServeThenRecoverRoundTrip) {
  const std::string mgf = temp_file("jdata.mgf");
  const std::string dir = temp_file("jdir");
  std::filesystem::remove_all(dir);

  const auto synth = run_cli("synth -o " + mgf + " --peptides 12 --seed 21");
  ASSERT_EQ(synth.exit_code, 0) << synth.output;

  const auto serve =
      run_cli("serve --shards 2 --batch 16 --journal-dir " + dir + " --ingest " + mgf);
  EXPECT_EQ(serve.exit_code, 0) << serve.output;
  EXPECT_NE(serve.output.find("journal:"), std::string::npos);

  const auto recover = run_cli("recover --journal-dir " + dir + " --query " + mgf);
  EXPECT_EQ(recover.exit_code, 0) << recover.output;
  EXPECT_NE(recover.output.find("recovered"), std::string::npos);
  EXPECT_NE(recover.output.find("batches replayed"), std::string::npos);
  EXPECT_NE(recover.output.find("latency p99"), std::string::npos);

  // Resume without repeating the original flags: the journal identity
  // (including the shard count) is adopted from the directory.
  const auto resume = run_cli("serve --journal-dir " + dir + " --ingest " + mgf);
  EXPECT_EQ(resume.exit_code, 0) << resume.output;
  EXPECT_NE(resume.output.find("recovered"), std::string::npos);

  std::remove(mgf.c_str());
  std::filesystem::remove_all(dir);
}

TEST(Cli, ServeIngestQuerySnapshotRestoreRoundTrip) {
  const std::string mgf = temp_file("data.mgf");
  const std::string snap = temp_file("state.sphsnap");

  const auto synth = run_cli("synth -o " + mgf + " --peptides 12 --seed 9");
  ASSERT_EQ(synth.exit_code, 0) << synth.output;

  const auto serve = run_cli("serve --shards 2 --batch 16 --ingest " + mgf +
                             " --query " + mgf + " --snapshot " + snap);
  EXPECT_EQ(serve.exit_code, 0) << serve.output;
  EXPECT_NE(serve.output.find("ingested"), std::string::npos);
  EXPECT_NE(serve.output.find("latency p99"), std::string::npos);
  EXPECT_NE(serve.output.find("snapshot written"), std::string::npos);

  const auto restored = run_cli("serve --restore " + snap + " --query " + mgf);
  EXPECT_EQ(restored.exit_code, 0) << restored.output;
  EXPECT_NE(restored.output.find("restored"), std::string::npos);
  EXPECT_NE(restored.output.find("latency p99"), std::string::npos);

  std::remove(mgf.c_str());
  std::remove(snap.c_str());
}

}  // namespace

#else
TEST(Cli, DISABLED_BinaryPathNotConfigured) {}
#endif
