#include "core/spechd.hpp"

#include <gtest/gtest.h>

#include "metrics/quality.hpp"
#include "ms/synthetic.hpp"

namespace spechd::core {
namespace {

const ms::labelled_dataset& dataset() {
  static const ms::labelled_dataset ds = [] {
    ms::synthetic_config c;
    c.peptide_count = 40;
    c.spectra_per_peptide_mean = 8.0;
    c.seed = 99;
    return ms::generate_dataset(c);
  }();
  return ds;
}

std::vector<std::int32_t> truth(const ms::labelled_dataset& ds) {
  std::vector<std::int32_t> t;
  t.reserve(ds.spectra.size());
  for (const auto& s : ds.spectra) t.push_back(s.label);
  return t;
}

TEST(Pipeline, LabelsAlignWithInput) {
  spechd_pipeline pipeline({});
  const auto result = pipeline.run(dataset().spectra);
  EXPECT_EQ(result.clustering.labels.size(), dataset().spectra.size());
  for (const auto l : result.clustering.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, static_cast<std::int32_t>(result.clustering.cluster_count));
  }
}

TEST(Pipeline, RecoversSyntheticClustersWithGoodQuality) {
  spechd_pipeline pipeline({});
  const auto result = pipeline.run(dataset().spectra);
  const auto q = metrics::evaluate_clustering(truth(dataset()), result.clustering);
  // Synthetic replicates of the same peptide share precursor and fragments;
  // the full pipeline must group a solid fraction with low error.
  EXPECT_GT(q.clustered_ratio, 0.35);
  EXPECT_LT(q.incorrect_ratio, 0.05);
  EXPECT_GT(q.completeness, 0.6);
}

TEST(Pipeline, DeterministicAcrossRuns) {
  spechd_pipeline pipeline({});
  const auto a = pipeline.run(dataset().spectra);
  const auto b = pipeline.run(dataset().spectra);
  EXPECT_EQ(a.clustering.labels, b.clustering.labels);
  EXPECT_EQ(a.clustering.cluster_count, b.clustering.cluster_count);
}

TEST(Pipeline, FixedPointAndFloatPathsAgreeOnQuality) {
  spechd_config fixed;
  fixed.use_fixed_point = true;
  spechd_config floating;
  floating.use_fixed_point = false;
  const auto qa = metrics::evaluate_clustering(
      truth(dataset()), spechd_pipeline(fixed).run(dataset().spectra).clustering);
  const auto qb = metrics::evaluate_clustering(
      truth(dataset()), spechd_pipeline(floating).run(dataset().spectra).clustering);
  // q16 quantisation must not change quality materially (Sec. III-C claim).
  EXPECT_NEAR(qa.clustered_ratio, qb.clustered_ratio, 0.05);
  EXPECT_NEAR(qa.incorrect_ratio, qb.incorrect_ratio, 0.02);
}

TEST(Pipeline, CompressionFactorInPaperBand) {
  spechd_pipeline pipeline({});
  const auto result = pipeline.run(dataset().spectra);
  // Fig. 6b reports 24-108x on real datasets; synthetic spectra have fewer
  // peaks, so accept a wider band but demand real compression.
  EXPECT_GT(result.compression_factor, 1.0);
}

TEST(Pipeline, ConsensusCountMatchesClusterCountOfSurvivors) {
  spechd_pipeline pipeline({});
  const auto result = pipeline.run(dataset().spectra);
  EXPECT_GT(result.consensus.size(), 0U);
  EXPECT_LE(result.consensus.size(), result.clustering.cluster_count);
}

TEST(Pipeline, HacStatsAccumulated) {
  spechd_pipeline pipeline({});
  const auto result = pipeline.run(dataset().spectra);
  EXPECT_GT(result.hac_stats.merges, 0U);
  EXPECT_GT(result.hac_stats.comparisons, 0U);
}

TEST(Pipeline, ThresholdControlsClusteredRatio) {
  spechd_config strict;
  strict.distance_threshold = 0.02;
  spechd_config loose;
  loose.distance_threshold = 0.45;
  const auto qs = metrics::evaluate_clustering(
      truth(dataset()), spechd_pipeline(strict).run(dataset().spectra).clustering);
  const auto ql = metrics::evaluate_clustering(
      truth(dataset()), spechd_pipeline(loose).run(dataset().spectra).clustering);
  EXPECT_LT(qs.clustered_ratio, ql.clustered_ratio);
}

TEST(Pipeline, LinkageChoiceMatters) {
  spechd_config complete;
  complete.link = cluster::linkage::complete;
  spechd_config single;
  single.link = cluster::linkage::single;
  const auto qc = metrics::evaluate_clustering(
      truth(dataset()), spechd_pipeline(complete).run(dataset().spectra).clustering);
  const auto qsngl = metrics::evaluate_clustering(
      truth(dataset()), spechd_pipeline(single).run(dataset().spectra).clustering);
  // Same threshold: single linkage merges at least as aggressively.
  EXPECT_GE(qsngl.clustered_ratio + 1e-9, qc.clustered_ratio);
}

TEST(Pipeline, EmptyInputSafe) {
  spechd_pipeline pipeline({});
  const auto result = pipeline.run({});
  EXPECT_TRUE(result.clustering.labels.empty());
  EXPECT_EQ(result.clustering.cluster_count, 0U);
}

TEST(Pipeline, SingleSpectrumIsSingleton) {
  spechd_pipeline pipeline({});
  const auto result = pipeline.run({dataset().spectra[0]});
  ASSERT_EQ(result.clustering.labels.size(), 1U);
  EXPECT_EQ(result.clustering.cluster_count, 1U);
}

TEST(Pipeline, PhaseTimersPopulated) {
  spechd_pipeline pipeline({});
  const auto result = pipeline.run(dataset().spectra);
  EXPECT_GE(result.phases.preprocess, 0.0);
  EXPECT_GT(result.phases.total(), 0.0);
}

}  // namespace
}  // namespace spechd::core
