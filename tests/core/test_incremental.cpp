#include "core/incremental.hpp"

#include <gtest/gtest.h>

#include "metrics/quality.hpp"
#include "ms/synthetic.hpp"

namespace spechd::core {
namespace {

ms::labelled_dataset make_dataset(std::uint64_t seed) {
  ms::synthetic_config c;
  c.peptide_count = 25;
  c.spectra_per_peptide_mean = 6.0;
  c.seed = seed;
  return ms::generate_dataset(c);
}

spechd_config config() {
  spechd_config c;
  c.distance_threshold = 0.42;
  return c;
}

TEST(Incremental, SingleBatchMatchesBatchPipelineQuality) {
  const auto data = make_dataset(5);
  std::vector<std::int32_t> truth;
  for (const auto& s : data.spectra) truth.push_back(s.label);

  incremental_clusterer inc(config());
  inc.add_spectra(data.spectra);
  inc.rebuild_dirty_buckets();

  // Labels returned in ingestion == input order for a single batch of
  // fully-surviving spectra; quality must match the batch pipeline's
  // (identical algorithm after rebuild).
  const auto clustering = inc.clustering();
  ASSERT_EQ(clustering.labels.size(), data.spectra.size());
  const auto q = metrics::evaluate_clustering(truth, clustering);
  EXPECT_GT(q.clustered_ratio, 0.5);
  EXPECT_LT(q.incorrect_ratio, 0.05);
}

TEST(Incremental, AddReportsCounts) {
  const auto data = make_dataset(6);
  incremental_clusterer inc(config());
  const auto report = inc.add_spectra(data.spectra);
  EXPECT_EQ(report.added, inc.size());
  EXPECT_EQ(report.joined_existing + report.new_clusters, report.added);
  EXPECT_GT(report.buckets_touched, 0U);
}

TEST(Incremental, SecondBatchJoinsExistingClusters) {
  const auto data = make_dataset(7);
  // Split into two halves of the same peptides.
  std::vector<ms::spectrum> first(data.spectra.begin(),
                                  data.spectra.begin() + data.spectra.size() / 2);
  std::vector<ms::spectrum> second(data.spectra.begin() + data.spectra.size() / 2,
                                   data.spectra.end());

  incremental_clusterer inc(config());
  inc.add_spectra(first);
  inc.rebuild_dirty_buckets();
  const auto before = inc.cluster_count();
  const auto report = inc.add_spectra(second);
  // Replicates of already-seen peptides must mostly join, not fork.
  EXPECT_GT(report.joined_existing, report.new_clusters);
  EXPECT_LT(inc.cluster_count(), before + second.size());
}

TEST(Incremental, RebuildRestoresBatchEquivalence) {
  const auto data = make_dataset(8);
  std::vector<ms::spectrum> first(data.spectra.begin(),
                                  data.spectra.begin() + data.spectra.size() / 2);
  std::vector<ms::spectrum> second(data.spectra.begin() + data.spectra.size() / 2,
                                   data.spectra.end());

  incremental_clusterer incremental(config());
  incremental.add_spectra(first);
  incremental.add_spectra(second);
  incremental.rebuild_dirty_buckets();

  incremental_clusterer oneshot(config());
  std::vector<ms::spectrum> all = first;
  all.insert(all.end(), second.begin(), second.end());
  oneshot.add_spectra(all);
  oneshot.rebuild_dirty_buckets();

  EXPECT_EQ(incremental.cluster_count(), oneshot.cluster_count());
}

TEST(Incremental, StoreRoundTripViaBootstrap) {
  const auto data = make_dataset(9);
  incremental_clusterer inc(config());
  inc.add_spectra(data.spectra);
  inc.rebuild_dirty_buckets();
  const auto clusters_before = inc.cluster_count();

  const auto store = inc.to_store();
  EXPECT_EQ(store.size(), inc.size());

  incremental_clusterer restored(config());
  restored.bootstrap(store);
  EXPECT_EQ(restored.size(), inc.size());
  EXPECT_EQ(restored.cluster_count(), clusters_before);
}

TEST(Incremental, BootstrapRejectsDimensionMismatch) {
  hdc::hv_store store(4096, 1);  // pipeline default is 2048
  incremental_clusterer inc(config());
  EXPECT_THROW(inc.bootstrap(store), logic_error);
}

TEST(Incremental, EmptyBatchIsNoop) {
  incremental_clusterer inc(config());
  const auto report = inc.add_spectra({});
  EXPECT_EQ(report.added, 0U);
  EXPECT_EQ(inc.size(), 0U);
  EXPECT_EQ(inc.cluster_count(), 0U);
}


TEST(IncrementalBundleMode, ClustersWithComparableQuality) {
  const auto data = make_dataset(12);
  std::vector<std::int32_t> truth;
  for (const auto& s : data.spectra) truth.push_back(s.label);

  incremental_clusterer exact(config(), assign_mode::complete_linkage);
  incremental_clusterer fast(config(), assign_mode::bundle_representative);
  exact.add_spectra(data.spectra);
  fast.add_spectra(data.spectra);

  const auto q_exact = metrics::evaluate_clustering(truth, exact.clustering());
  const auto q_fast = metrics::evaluate_clustering(truth, fast.clustering());
  // The bundled representative is a faster, slightly more permissive
  // criterion; quality must stay in the same regime.
  EXPECT_GT(q_fast.clustered_ratio, q_exact.clustered_ratio * 0.8);
  EXPECT_LT(q_fast.incorrect_ratio, 0.10);
}

TEST(IncrementalBundleMode, RebuildRefreshesRepresentatives) {
  const auto data = make_dataset(13);
  incremental_clusterer fast(config(), assign_mode::bundle_representative);
  fast.add_spectra(data.spectra);
  fast.rebuild_dirty_buckets();
  // After a rebuild, adding replicates of existing peptides must still
  // mostly join (representatives were rebuilt, not dropped).
  const auto report = fast.add_spectra(data.spectra);
  EXPECT_GT(report.joined_existing, report.new_clusters);
}

}  // namespace
}  // namespace spechd::core
