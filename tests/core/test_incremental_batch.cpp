// Determinism/property tests for the batched streaming path: push_batch()
// must produce exactly the clusters sequential push()/add_spectra() would —
// same labels, same counts — for any batch order and any thread count.
#include "core/incremental.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ms/synthetic.hpp"
#include "util/rng.hpp"

namespace spechd::core {
namespace {

ms::labelled_dataset make_dataset(std::uint64_t seed) {
  ms::synthetic_config c;
  c.peptide_count = 25;
  c.spectra_per_peptide_mean = 6.0;
  c.seed = seed;
  return ms::generate_dataset(c);
}

spechd_config config(std::size_t threads = 1) {
  spechd_config c;
  c.distance_threshold = 0.42;
  c.threads = threads;
  return c;
}

void expect_same_clustering(const incremental_clusterer& a,
                            const incremental_clusterer& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_EQ(a.cluster_count(), b.cluster_count()) << what;
  const auto ca = a.clustering();
  const auto cb = b.clustering();
  ASSERT_EQ(ca.labels.size(), cb.labels.size()) << what;
  for (std::size_t i = 0; i < ca.labels.size(); ++i) {
    EXPECT_EQ(ca.labels[i], cb.labels[i]) << what << " record " << i;
  }
}

TEST(IncrementalBatch, PushBatchMatchesSequential) {
  const auto data = make_dataset(41);
  incremental_clusterer sequential(config());
  incremental_clusterer batched(config());
  const auto r_seq = sequential.add_spectra(data.spectra);
  const auto r_batch = batched.push_batch(data.spectra);
  EXPECT_EQ(r_seq.added, r_batch.added);
  EXPECT_EQ(r_seq.joined_existing, r_batch.joined_existing);
  EXPECT_EQ(r_seq.new_clusters, r_batch.new_clusters);
  EXPECT_EQ(r_seq.buckets_touched, r_batch.buckets_touched);
  expect_same_clustering(sequential, batched, "one batch");
}

TEST(IncrementalBatch, PushBatchMatchesSequentialAcrossThreadCounts) {
  const auto data = make_dataset(42);
  incremental_clusterer sequential(config());
  sequential.add_spectra(data.spectra);
  for (const std::size_t threads : {1UL, 4UL}) {
    incremental_clusterer batched(config(threads));
    batched.push_batch(data.spectra);
    expect_same_clustering(sequential, batched,
                           "threads=" + std::to_string(threads));
  }
}

TEST(IncrementalBatch, ShuffledBatchMatchesSequentialOnSameOrder) {
  // In-bucket assignment is order-dependent by design (streaming
  // semantics); the property is that for *any* arrival order, batch and
  // sequential ingestion of that same order agree exactly.
  const auto data = make_dataset(43);
  xoshiro256ss rng(7);
  auto shuffled = data.spectra;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = shuffled.size() - 1; i > 0; --i) {
      std::swap(shuffled[i], shuffled[rng.bounded(i + 1)]);
    }
    incremental_clusterer sequential(config());
    incremental_clusterer batched(config(4));
    sequential.add_spectra(shuffled);
    batched.push_batch(shuffled);
    expect_same_clustering(sequential, batched, "round " + std::to_string(round));
  }
}

TEST(IncrementalBatch, PushMatchesSingletonBatch) {
  const auto data = make_dataset(44);
  incremental_clusterer one_by_one(config());
  incremental_clusterer batched(config());
  std::size_t added = 0;
  for (const auto& s : data.spectra) {
    added += one_by_one.push(s).added;
  }
  const auto report = batched.push_batch(data.spectra);
  EXPECT_EQ(added, report.added);
  expect_same_clustering(one_by_one, batched, "push vs push_batch");
}

TEST(IncrementalBatch, BundleModeMatchesSequential) {
  const auto data = make_dataset(45);
  incremental_clusterer sequential(config(), assign_mode::bundle_representative);
  incremental_clusterer batched(config(4), assign_mode::bundle_representative);
  sequential.add_spectra(data.spectra);
  batched.push_batch(data.spectra);
  expect_same_clustering(sequential, batched, "bundle mode");
}

TEST(IncrementalBatch, MultipleBatchesAndRebuild) {
  const auto data = make_dataset(46);
  const std::size_t half = data.spectra.size() / 2;
  std::vector<ms::spectrum> first(data.spectra.begin(), data.spectra.begin() + half);
  std::vector<ms::spectrum> second(data.spectra.begin() + half, data.spectra.end());

  incremental_clusterer sequential(config());
  incremental_clusterer batched(config(4));
  sequential.add_spectra(first);
  sequential.add_spectra(second);
  batched.push_batch(first);
  batched.push_batch(second);
  expect_same_clustering(sequential, batched, "two batches");

  // After rebuild both must land on the batch-pipeline-equivalent result.
  sequential.rebuild_dirty_buckets();
  batched.rebuild_dirty_buckets();
  expect_same_clustering(sequential, batched, "after rebuild");
}

TEST(IncrementalBatch, EmptyBatchIsNoop) {
  incremental_clusterer inc(config(4));
  const auto report = inc.push_batch({});
  EXPECT_EQ(report.added, 0U);
  EXPECT_EQ(inc.size(), 0U);
  EXPECT_EQ(inc.cluster_count(), 0U);
}

}  // namespace
}  // namespace spechd::core
