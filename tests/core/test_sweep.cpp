#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include "core/spechd.hpp"

namespace spechd::core {
namespace {

const ms::labelled_dataset& dataset() {
  static const ms::labelled_dataset ds = [] {
    ms::synthetic_config c;
    c.peptide_count = 25;
    c.spectra_per_peptide_mean = 6.0;
    c.seed = 3;
    return ms::generate_dataset(c);
  }();
  return ds;
}

cluster::flat_clustering run_spechd(const std::vector<ms::spectrum>& spectra,
                                    double aggressiveness) {
  spechd_config config;
  config.distance_threshold = 0.25 + 0.30 * aggressiveness;
  return spechd_pipeline(config).run(spectra).clustering;
}

TEST(Sweep, ProducesRequestedSteps) {
  const auto result = run_sweep("SpecHD", dataset(), run_spechd, 5);
  EXPECT_EQ(result.tool, "SpecHD");
  ASSERT_EQ(result.points.size(), 5U);
  EXPECT_DOUBLE_EQ(result.points.front().aggressiveness, 0.0);
  EXPECT_DOUBLE_EQ(result.points.back().aggressiveness, 1.0);
}

TEST(Sweep, ClusteredRatioNonDecreasingForHacThresholdSweep) {
  const auto result = run_sweep("SpecHD", dataset(), run_spechd, 5);
  for (std::size_t i = 1; i < result.points.size(); ++i) {
    EXPECT_GE(result.points[i].quality.clustered_ratio + 1e-9,
              result.points[i - 1].quality.clustered_ratio);
  }
}

TEST(Sweep, BestAtIcrRespectsBudget) {
  const auto result = run_sweep("SpecHD", dataset(), run_spechd, 7);
  const auto* best = result.best_at_icr(0.01);
  ASSERT_NE(best, nullptr);
  EXPECT_LE(best->quality.incorrect_ratio, 0.01);
  // No point within budget has a higher clustered ratio.
  for (const auto& p : result.points) {
    if (p.quality.incorrect_ratio <= 0.01) {
      EXPECT_LE(p.quality.clustered_ratio, best->quality.clustered_ratio + 1e-12);
    }
  }
}

TEST(Sweep, BestAtIcrNullWhenImpossible) {
  // A sweep function that always mis-clusters everything into one blob.
  const auto blob = [](const std::vector<ms::spectrum>& spectra, double) {
    cluster::flat_clustering c;
    c.labels.assign(spectra.size(), 0);
    c.cluster_count = 1;
    return c;
  };
  const auto result = run_sweep("blob", dataset(), blob, 3);
  EXPECT_EQ(result.best_at_icr(0.0001), nullptr);
}

TEST(Sweep, InvalidStepsRejected) {
  EXPECT_THROW(run_sweep("x", dataset(), run_spechd, 1), logic_error);
}

}  // namespace
}  // namespace spechd::core
