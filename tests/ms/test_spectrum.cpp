#include "ms/spectrum.hpp"

#include <gtest/gtest.h>

namespace spechd::ms {
namespace {

spectrum make_spectrum(std::initializer_list<peak> peaks) {
  spectrum s;
  s.peaks = peaks;
  return s;
}

TEST(Spectrum, BasePeakOfEmptyIsZero) {
  spectrum s;
  EXPECT_FLOAT_EQ(base_peak_intensity(s), 0.0F);
}

TEST(Spectrum, BasePeakFindsMaximum) {
  const auto s = make_spectrum({{100.0, 5.0F}, {200.0, 50.0F}, {300.0, 7.0F}});
  EXPECT_FLOAT_EQ(base_peak_intensity(s), 50.0F);
}

TEST(Spectrum, TotalIonCurrentSums) {
  const auto s = make_spectrum({{100.0, 1.0F}, {200.0, 2.0F}, {300.0, 3.0F}});
  EXPECT_DOUBLE_EQ(total_ion_current(s), 6.0);
}

TEST(Spectrum, SortPeaksOrdersByMz) {
  auto s = make_spectrum({{300.0, 1.0F}, {100.0, 2.0F}, {200.0, 3.0F}});
  EXPECT_FALSE(peaks_sorted(s));
  sort_peaks(s);
  EXPECT_TRUE(peaks_sorted(s));
  EXPECT_DOUBLE_EQ(s.peaks.front().mz, 100.0);
  EXPECT_DOUBLE_EQ(s.peaks.back().mz, 300.0);
}

TEST(Spectrum, PrecursorNeutralMass) {
  spectrum s;
  s.precursor_mz = 500.0;
  s.precursor_charge = 2;
  EXPECT_NEAR(s.precursor_neutral_mass(), (500.0 - proton_mass) * 2, 1e-9);
}

TEST(Spectrum, NeutralMassUnknownChargeIsZero) {
  spectrum s;
  s.precursor_mz = 500.0;
  s.precursor_charge = 0;
  EXPECT_DOUBLE_EQ(s.precursor_neutral_mass(), 0.0);
}

TEST(Spectrum, RawPeakBytesIsTwelvePerPeak) {
  const auto s = make_spectrum({{1.0, 1.0F}, {2.0, 2.0F}});
  EXPECT_EQ(raw_peak_bytes(s), 2 * 12U);
}

TEST(BinnedCosine, IdenticalSpectraScoreOne) {
  const auto s = make_spectrum({{100.02, 10.0F}, {200.5, 20.0F}, {350.7, 5.0F}});
  EXPECT_NEAR(binned_cosine(s, s, 0.5), 1.0, 1e-12);
}

TEST(BinnedCosine, DisjointSpectraScoreZero) {
  const auto a = make_spectrum({{100.0, 10.0F}});
  const auto b = make_spectrum({{900.0, 10.0F}});
  EXPECT_DOUBLE_EQ(binned_cosine(a, b, 0.5), 0.0);
}

TEST(BinnedCosine, EmptyOrBadBinWidthIsZero) {
  const auto a = make_spectrum({{100.0, 10.0F}});
  const spectrum empty;
  EXPECT_DOUBLE_EQ(binned_cosine(a, empty, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(binned_cosine(a, a, 0.0), 0.0);
}

TEST(BinnedCosine, SymmetricInArguments) {
  const auto a = make_spectrum({{100.0, 10.0F}, {200.0, 3.0F}});
  const auto b = make_spectrum({{100.2, 6.0F}, {300.0, 4.0F}});
  EXPECT_NEAR(binned_cosine(a, b, 1.0), binned_cosine(b, a, 1.0), 1e-12);
}

TEST(BinnedCosine, JitterWithinBinStillMatches) {
  const auto a = make_spectrum({{100.00, 10.0F}});
  const auto b = make_spectrum({{100.04, 10.0F}});  // same 0.05-wide bin region
  EXPECT_GT(binned_cosine(a, b, 0.5), 0.99);
}

}  // namespace
}  // namespace spechd::ms
