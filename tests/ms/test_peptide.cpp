#include "ms/peptide.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"

namespace spechd::ms {
namespace {

TEST(Residues, CanonicalSetHasTwenty) {
  EXPECT_EQ(canonical_residues().size(), 20U);
  for (const char c : canonical_residues()) EXPECT_TRUE(is_residue(c));
}

TEST(Residues, NonResiduesRejected) {
  EXPECT_FALSE(is_residue('B'));
  EXPECT_FALSE(is_residue('J'));
  EXPECT_FALSE(is_residue('O'));
  EXPECT_FALSE(is_residue('U'));
  EXPECT_FALSE(is_residue('X'));
  EXPECT_FALSE(is_residue('Z'));
  EXPECT_FALSE(is_residue('a'));
  EXPECT_THROW(residue_mass('X'), logic_error);
}

TEST(Residues, GlycineMassKnownValue) {
  EXPECT_NEAR(residue_mass('G'), 57.02146, 1e-4);
}

TEST(Residues, LeucineIsoleucineIsobaric) {
  EXPECT_DOUBLE_EQ(residue_mass('L'), residue_mass('I'));
}

TEST(Peptide, InvalidSequenceThrows) {
  EXPECT_THROW(peptide("PEPTIDEX"), logic_error);
  EXPECT_NO_THROW(peptide("PEPTIDE"));
}

TEST(Peptide, NeutralMassKnownValue) {
  // PEPTIDE monoisotopic mass = 799.3600 Da (standard reference value).
  peptide p("PEPTIDE");
  EXPECT_NEAR(p.neutral_mass(), 799.3600, 1e-3);
}

TEST(Peptide, PrecursorMzChargeRelation) {
  peptide p("PEPTIDE");
  const double m = p.neutral_mass();
  EXPECT_NEAR(p.precursor_mz(1), m + proton_mass, 1e-9);
  EXPECT_NEAR(p.precursor_mz(2), (m + 2 * proton_mass) / 2, 1e-9);
  EXPECT_THROW(p.precursor_mz(0), logic_error);
}

TEST(Fragments, CountIsTwoPerCleavageSite) {
  peptide p("PEPTIDE");  // 7 residues -> 6 sites -> 12 ions
  EXPECT_EQ(b_y_ions(p).size(), 12U);
}

TEST(Fragments, SortedAscendingByMz) {
  const auto ions = b_y_ions(peptide("ELVISLIVESK"));
  EXPECT_TRUE(std::is_sorted(ions.begin(), ions.end(),
                             [](const auto& a, const auto& b) { return a.mz < b.mz; }));
}

TEST(Fragments, B2OfPeptideKnownValue) {
  // b2 of "PE" = P + E + proton = 97.0528 + 129.0426 + 1.0073 = 227.1026.
  const auto ions = b_y_ions(peptide("PEPTIDE"));
  const auto b2 = std::find_if(ions.begin(), ions.end(), [](const fragment_ion& f) {
    return f.kind == fragment_ion::series::b && f.index == 2;
  });
  ASSERT_NE(b2, ions.end());
  EXPECT_NEAR(b2->mz, 227.1026, 1e-3);
}

TEST(Fragments, BYPairSumsToPrecursorMass) {
  // For every i: b_i + y_(n-i) = M + 2 * proton (both singly charged).
  peptide p("ACDEFGHIK");
  const auto ions = b_y_ions(p);
  const double total = p.neutral_mass() + 2 * proton_mass;
  const int n = static_cast<int>(p.length());
  for (const auto& ion : ions) {
    if (ion.kind != fragment_ion::series::b) continue;
    const auto y = std::find_if(ions.begin(), ions.end(), [&](const fragment_ion& f) {
      return f.kind == fragment_ion::series::y && f.index == n - ion.index;
    });
    ASSERT_NE(y, ions.end());
    EXPECT_NEAR(ion.mz + y->mz, total, 1e-6);
  }
}

TEST(TheoreticalSpectrum, HasPrecursorAndSortedPeaks) {
  const auto s = theoretical_spectrum(peptide("PEPTIDEK"), 2);
  EXPECT_EQ(s.precursor_charge, 2);
  EXPECT_GT(s.precursor_mz, 0.0);
  EXPECT_TRUE(peaks_sorted(s));
  EXPECT_EQ(s.peaks.size(), 14U);
}

TEST(TheoreticalSpectrum, YIonsStrongerThanBIons) {
  peptide p("SAMPLEK");
  const auto s = theoretical_spectrum(p, 2);
  const auto ions = b_y_ions(p);
  // Compare matched-position ions: y_i vs b_i intensities for same index.
  double y_sum = 0.0;
  double b_sum = 0.0;
  for (std::size_t k = 0; k < ions.size(); ++k) {
    if (ions[k].kind == fragment_ion::series::y) {
      y_sum += s.peaks[k].intensity;
    } else {
      b_sum += s.peaks[k].intensity;
    }
  }
  EXPECT_GT(y_sum, b_sum);
}

TEST(Digest, CleavesAfterKAndR) {
  const auto peptides = tryptic_digest("AAAKBBBRCCCK", 0, 1, 40);
  // 'B' is not a residue; only the segments of canonical residues survive.
  ASSERT_EQ(peptides.size(), 2U);
  EXPECT_EQ(peptides[0].sequence(), "AAAK");
  EXPECT_EQ(peptides[1].sequence(), "CCCK");
}

TEST(Digest, NoCleavageBeforeProline) {
  const auto peptides = tryptic_digest("AAAKPGGGR", 0, 1, 40);
  ASSERT_EQ(peptides.size(), 1U);
  EXPECT_EQ(peptides[0].sequence(), "AAAKPGGGR");
}

TEST(Digest, MissedCleavagesExpandSet) {
  const auto none = tryptic_digest("AAAKCCCKDDDK", 0, 1, 40);
  const auto one = tryptic_digest("AAAKCCCKDDDK", 1, 1, 40);
  EXPECT_EQ(none.size(), 3U);
  EXPECT_EQ(one.size(), 5U);  // 3 fully cleaved + 2 with one missed site
  const auto has = [&](const char* seq) {
    return std::any_of(one.begin(), one.end(),
                       [&](const peptide& p) { return p.sequence() == seq; });
  };
  EXPECT_TRUE(has("AAAKCCCK"));
  EXPECT_TRUE(has("CCCKDDDK"));
}

TEST(Digest, LengthWindowFilters) {
  const auto peptides = tryptic_digest("AAAKCCCCCCCCCCK", 0, 6, 40);
  ASSERT_EQ(peptides.size(), 1U);  // AAAK (len 4) filtered out
  EXPECT_EQ(peptides[0].sequence(), "CCCCCCCCCCK");
}

TEST(Digest, EmptyProteinYieldsNothing) {
  EXPECT_TRUE(tryptic_digest("", 0).empty());
}

}  // namespace
}  // namespace spechd::ms
