#include "ms/mzml.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace spechd::ms {
namespace {

spectrum sample_spectrum() {
  spectrum s;
  s.title = "controllerType=0 controllerNumber=1 scan=15";
  s.scan = 15;
  s.precursor_mz = 733.3871;
  s.precursor_charge = 2;
  s.retention_time = 1800.5;
  s.peaks = {{147.1128, 230.5F}, {245.0768, 11.0F}, {1021.5, 99.5F}};
  return s;
}

TEST(Mzml, RoundTripSingleSpectrum) {
  std::stringstream io;
  write_mzml(io, {sample_spectrum()});
  const auto back = read_mzml(io);
  ASSERT_EQ(back.size(), 1U);
  const auto& s = back[0];
  EXPECT_EQ(s.scan, 15U);
  EXPECT_NEAR(s.precursor_mz, 733.3871, 1e-9);
  EXPECT_EQ(s.precursor_charge, 2);
  EXPECT_NEAR(s.retention_time, 1800.5, 1e-6);
  ASSERT_EQ(s.peaks.size(), 3U);
  EXPECT_NEAR(s.peaks[0].mz, 147.1128, 1e-9);       // f64 array: exact
  EXPECT_NEAR(s.peaks[0].intensity, 230.5F, 1e-3);  // f32 array
}

TEST(Mzml, RoundTripMultipleSpectra) {
  auto a = sample_spectrum();
  auto b = sample_spectrum();
  b.scan = 16;
  b.title = "scan=16";
  b.precursor_mz = 900.0;
  std::stringstream io;
  write_mzml(io, {a, b});
  const auto back = read_mzml(io);
  ASSERT_EQ(back.size(), 2U);
  EXPECT_EQ(back[1].scan, 16U);
  EXPECT_DOUBLE_EQ(back[1].precursor_mz, 900.0);
}

TEST(Mzml, ScanStartTimeMinutesConverted) {
  std::istringstream in(R"(<?xml version="1.0"?>
<mzML><run id="r"><spectrumList count="1">
<spectrum index="0" id="scan=1" defaultArrayLength="0">
  <cvParam accession="MS:1000511" name="ms level" value="2"/>
  <cvParam accession="MS:1000016" name="scan start time" value="2.5" unitName="minute"/>
  <cvParam accession="MS:1000744" name="selected ion m/z" value="500"/>
</spectrum></spectrumList></run></mzML>)");
  const auto back = read_mzml(in);
  ASSERT_EQ(back.size(), 1U);
  EXPECT_NEAR(back[0].retention_time, 150.0, 1e-9);
}

TEST(Mzml, Ms1SpectraSkipped) {
  std::istringstream in(R"(<mzML><run id="r"><spectrumList count="2">
<spectrum index="0" id="scan=1" defaultArrayLength="0">
  <cvParam accession="MS:1000511" name="ms level" value="1"/>
</spectrum>
<spectrum index="1" id="scan=2" defaultArrayLength="0">
  <cvParam accession="MS:1000511" name="ms level" value="2"/>
  <cvParam accession="MS:1000744" name="selected ion m/z" value="500"/>
</spectrum></spectrumList></run></mzML>)");
  const auto back = read_mzml(in);
  ASSERT_EQ(back.size(), 1U);
  EXPECT_EQ(back[0].scan, 2U);
}

TEST(Mzml, CompressedArrayRejected) {
  std::istringstream in(R"(<mzML><run id="r"><spectrumList count="1">
<spectrum index="0" id="scan=1" defaultArrayLength="1">
  <cvParam accession="MS:1000511" name="ms level" value="2"/>
  <binaryDataArrayList count="1"><binaryDataArray>
    <cvParam accession="MS:1000523" name="64-bit float"/>
    <cvParam accession="MS:1000574" name="zlib compression"/>
    <cvParam accession="MS:1000514" name="m/z array"/>
    <binary>AAAAAAAA8D8=</binary>
  </binaryDataArray></binaryDataArrayList>
</spectrum></spectrumList></run></mzML>)");
  EXPECT_THROW(read_mzml(in), parse_error);
}

TEST(Mzml, EmptySpectrumListOk) {
  std::stringstream io;
  write_mzml(io, {});
  EXPECT_TRUE(read_mzml(io).empty());
}

TEST(Mzml, MissingFileThrows) {
  EXPECT_THROW(read_mzml_file("/nonexistent/file.mzML"), io_error);
}

TEST(Mzml, EmptyPeakListSpectrumRoundTrips) {
  spectrum s;
  s.title = "scan=3";
  s.scan = 3;
  s.precursor_mz = 400.0;
  s.precursor_charge = 2;
  std::stringstream io;
  write_mzml(io, {s});
  const auto back = read_mzml(io);
  ASSERT_EQ(back.size(), 1U);
  EXPECT_TRUE(back[0].peaks.empty());
}

}  // namespace
}  // namespace spechd::ms
