#include "ms/fasta.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace spechd::ms {
namespace {

TEST(Fasta, ParsesMultipleWrappedRecords) {
  std::istringstream in(
      ">sp|P1|PROT1 first protein\n"
      "ACDEFG\n"
      "HIKLMN\n"
      ">sp|P2|PROT2 second\n"
      "PQRSTVWY\n");
  const auto entries = read_fasta(in);
  ASSERT_EQ(entries.size(), 2U);
  EXPECT_EQ(entries[0].header, "sp|P1|PROT1 first protein");
  EXPECT_EQ(entries[0].sequence, "ACDEFGHIKLMN");
  EXPECT_EQ(entries[1].sequence, "PQRSTVWY");
}

TEST(Fasta, HandlesCrlfStopCodonsAndCase) {
  std::istringstream in(">p\r\nacDEfg*\r\n");
  const auto entries = read_fasta(in);
  ASSERT_EQ(entries.size(), 1U);
  EXPECT_EQ(entries[0].sequence, "ACDEFG");
}

TEST(Fasta, CommentLinesSkipped) {
  std::istringstream in(">p\n;comment\nACDE\n");
  ASSERT_EQ(read_fasta(in).size(), 1U);
}

TEST(Fasta, SequenceBeforeHeaderThrows) {
  std::istringstream in("ACDEFG\n>p\n");
  EXPECT_THROW(read_fasta(in), parse_error);
}

TEST(Fasta, EmptyInputEmptyOutput) {
  std::istringstream in("");
  EXPECT_TRUE(read_fasta(in).empty());
}

TEST(Fasta, RoundTrip) {
  std::vector<fasta_entry> entries = {
      {"protein one", "ACDEFGHIKLMNPQRSTVWYACDEFGHIKLMNPQRSTVWYACDEFGHIKLMNPQRSTVWYACDEF"},
      {"protein two", "MKKR"},
  };
  std::stringstream io;
  write_fasta(io, entries, 25);
  const auto back = read_fasta(io);
  ASSERT_EQ(back.size(), 2U);
  EXPECT_EQ(back[0].sequence, entries[0].sequence);
  EXPECT_EQ(back[1].header, "protein two");
}

TEST(Fasta, MissingFileThrows) {
  EXPECT_THROW(read_fasta_file("/nonexistent/proteins.fasta"), io_error);
}

TEST(FastaLibrary, DigestsAndDeduplicates) {
  // Both proteins contain the shared peptide "AAAAGGK".
  std::vector<fasta_entry> entries = {
      {"p1", "AAAAGGKCCCCDDR"},
      {"p2", "AAAAGGKEEEEFFK"},
  };
  const auto library = library_from_fasta(entries, 0, 6, 40);
  std::size_t shared = 0;
  for (const auto& p : library) shared += p.sequence() == "AAAAGGK" ? 1 : 0;
  EXPECT_EQ(shared, 1U);  // deduplicated
  EXPECT_GE(library.size(), 3U);
  EXPECT_TRUE(std::is_sorted(library.begin(), library.end(),
                             [](const peptide& a, const peptide& b) {
                               return a.sequence() < b.sequence();
                             }));
}

TEST(FastaLibrary, SkipsNonCanonicalPeptides) {
  std::vector<fasta_entry> entries = {{"p", "AAAXAAGGKDDDDDDR"}};
  const auto library = library_from_fasta(entries, 0, 6, 40);
  for (const auto& p : library) {
    EXPECT_EQ(p.sequence().find('X'), std::string::npos);
  }
}

}  // namespace
}  // namespace spechd::ms
