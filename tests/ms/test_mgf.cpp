#include "ms/mgf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace spechd::ms {
namespace {

TEST(Mgf, ParsesMinimalRecord) {
  std::istringstream in(
      "BEGIN IONS\n"
      "TITLE=scan 1\n"
      "PEPMASS=445.12\n"
      "CHARGE=2+\n"
      "100.5 10\n"
      "200.25 20.5\n"
      "END IONS\n");
  const auto spectra = read_mgf(in);
  ASSERT_EQ(spectra.size(), 1U);
  const auto& s = spectra[0];
  EXPECT_EQ(s.title, "scan 1");
  EXPECT_DOUBLE_EQ(s.precursor_mz, 445.12);
  EXPECT_EQ(s.precursor_charge, 2);
  ASSERT_EQ(s.peaks.size(), 2U);
  EXPECT_DOUBLE_EQ(s.peaks[0].mz, 100.5);
  EXPECT_FLOAT_EQ(s.peaks[1].intensity, 20.5F);
}

TEST(Mgf, ParsesPepmassWithIntensity) {
  std::istringstream in("BEGIN IONS\nPEPMASS=445.12 1000.0\n100 1\nEND IONS\n");
  const auto spectra = read_mgf(in);
  ASSERT_EQ(spectra.size(), 1U);
  EXPECT_DOUBLE_EQ(spectra[0].precursor_mz, 445.12);
}

TEST(Mgf, ParsesRtAndScans) {
  std::istringstream in(
      "BEGIN IONS\nPEPMASS=445\nRTINSECONDS=123.5\nSCANS=42\n100 1\nEND IONS\n");
  const auto spectra = read_mgf(in);
  ASSERT_EQ(spectra.size(), 1U);
  EXPECT_DOUBLE_EQ(spectra[0].retention_time, 123.5);
  EXPECT_EQ(spectra[0].scan, 42U);
}

TEST(Mgf, SortsUnorderedPeaks) {
  std::istringstream in("BEGIN IONS\nPEPMASS=445\n300 3\n100 1\n200 2\nEND IONS\n");
  const auto spectra = read_mgf(in);
  ASSERT_EQ(spectra.size(), 1U);
  EXPECT_TRUE(peaks_sorted(spectra[0]));
}

TEST(Mgf, MultipleRecordsAndComments) {
  std::istringstream in(
      "# comment\n"
      "BEGIN IONS\nPEPMASS=100\n50 1\nEND IONS\n"
      "; another comment\n"
      "BEGIN IONS\nPEPMASS=200\n60 1\nEND IONS\n");
  EXPECT_EQ(read_mgf(in).size(), 2U);
}

TEST(Mgf, ChargeVariants) {
  for (const auto& [text, expected] :
       std::vector<std::pair<std::string, int>>{{"2+", 2}, {"3", 3}, {"2-", -2},
                                                {"2+ and 3+", 2}}) {
    std::istringstream in("BEGIN IONS\nPEPMASS=100\nCHARGE=" + text + "\n50 1\nEND IONS\n");
    const auto spectra = read_mgf(in);
    ASSERT_EQ(spectra.size(), 1U);
    EXPECT_EQ(spectra[0].precursor_charge, expected) << text;
  }
}

TEST(Mgf, ThrowsOnNestedBegin) {
  std::istringstream in("BEGIN IONS\nBEGIN IONS\n");
  EXPECT_THROW(read_mgf(in), parse_error);
}

TEST(Mgf, ThrowsOnUnterminatedRecord) {
  std::istringstream in("BEGIN IONS\nPEPMASS=100\n50 1\n");
  EXPECT_THROW(read_mgf(in), parse_error);
}

TEST(Mgf, ThrowsOnBadPeakLine) {
  std::istringstream in("BEGIN IONS\nPEPMASS=100\n50 abc\nEND IONS\n");
  EXPECT_THROW(read_mgf(in), parse_error);
}

TEST(Mgf, ThrowsOnEndWithoutBegin) {
  std::istringstream in("END IONS\n");
  EXPECT_THROW(read_mgf(in), parse_error);
}

TEST(Mgf, RoundTripPreservesData) {
  spectrum s;
  s.title = "roundtrip";
  s.precursor_mz = 523.7754;
  s.precursor_charge = 2;
  s.retention_time = 88.25;
  s.scan = 7;
  s.peaks = {{101.0715, 12.5F}, {228.1343, 100.0F}, {901.4561, 3.25F}};

  std::stringstream io;
  write_mgf(io, {s});
  const auto back = read_mgf(io);
  ASSERT_EQ(back.size(), 1U);
  EXPECT_EQ(back[0].title, s.title);
  EXPECT_NEAR(back[0].precursor_mz, s.precursor_mz, 1e-6);
  EXPECT_EQ(back[0].precursor_charge, s.precursor_charge);
  EXPECT_NEAR(back[0].retention_time, s.retention_time, 1e-6);
  EXPECT_EQ(back[0].scan, s.scan);
  ASSERT_EQ(back[0].peaks.size(), s.peaks.size());
  for (std::size_t i = 0; i < s.peaks.size(); ++i) {
    EXPECT_NEAR(back[0].peaks[i].mz, s.peaks[i].mz, 1e-6);
    EXPECT_NEAR(back[0].peaks[i].intensity, s.peaks[i].intensity, 1e-4);
  }
}

TEST(Mgf, MissingFileThrowsIoError) {
  EXPECT_THROW(read_mgf_file("/nonexistent/path/to.mgf"), io_error);
}

// --- robustness: CRLF, empty spectra, missing CHARGE ------------------------

namespace {
std::string to_crlf(const std::string& text) {
  std::string out;
  out.reserve(text.size() * 2);
  for (const char c : text) {
    if (c == '\n') out += '\r';
    out += c;
  }
  return out;
}
}  // namespace

TEST(Mgf, CrlfLineEndingsRoundTrip) {
  spectrum s;
  s.title = "windows file";
  s.precursor_mz = 523.7754;
  s.precursor_charge = 2;
  s.retention_time = 88.25;
  s.scan = 7;
  s.peaks = {{101.0715, 12.5F}, {228.1343, 100.0F}};

  std::stringstream unix_io;
  write_mgf(unix_io, {s});
  std::istringstream crlf_in(to_crlf(unix_io.str()));
  const auto back = read_mgf(crlf_in);
  ASSERT_EQ(back.size(), 1U);
  EXPECT_EQ(back[0].title, s.title);
  EXPECT_NEAR(back[0].precursor_mz, s.precursor_mz, 1e-6);
  EXPECT_EQ(back[0].precursor_charge, s.precursor_charge);
  EXPECT_NEAR(back[0].retention_time, s.retention_time, 1e-6);
  EXPECT_EQ(back[0].scan, s.scan);
  ASSERT_EQ(back[0].peaks.size(), s.peaks.size());
  for (std::size_t i = 0; i < s.peaks.size(); ++i) {
    EXPECT_NEAR(back[0].peaks[i].mz, s.peaks[i].mz, 1e-6);
  }
}

TEST(Mgf, CrlfWithBlankLinesAndComments) {
  std::istringstream in(
      "# comment\r\n"
      "\r\n"
      "BEGIN IONS\r\n"
      "PEPMASS=445.12\r\n"
      "CHARGE=2+\r\n"
      "100.5 10\r\n"
      "\r\n"
      "END IONS\r\n");
  const auto spectra = read_mgf(in);
  ASSERT_EQ(spectra.size(), 1U);
  EXPECT_DOUBLE_EQ(spectra[0].precursor_mz, 445.12);
  EXPECT_EQ(spectra[0].precursor_charge, 2);
  ASSERT_EQ(spectra[0].peaks.size(), 1U);
}

TEST(Mgf, EmptySpectrumRoundTrips) {
  // A BEGIN/END block with headers but zero peaks is a valid (if useless)
  // record and must survive a write/read cycle, not crash or vanish.
  std::istringstream in(
      "BEGIN IONS\nTITLE=empty\nPEPMASS=300.5\nEND IONS\n"
      "BEGIN IONS\nPEPMASS=400\n150 5\nEND IONS\n");
  const auto spectra = read_mgf(in);
  ASSERT_EQ(spectra.size(), 2U);
  EXPECT_TRUE(spectra[0].peaks.empty());
  EXPECT_DOUBLE_EQ(spectra[0].precursor_mz, 300.5);

  std::stringstream io;
  write_mgf(io, spectra);
  const auto back = read_mgf(io);
  ASSERT_EQ(back.size(), 2U);
  EXPECT_TRUE(back[0].peaks.empty());
  EXPECT_DOUBLE_EQ(back[0].precursor_mz, 300.5);
  ASSERT_EQ(back[1].peaks.size(), 1U);
}

TEST(Mgf, MissingChargeIsUnknownAndRoundTrips) {
  std::istringstream in("BEGIN IONS\nPEPMASS=445.12\n100 1\nEND IONS\n");
  const auto spectra = read_mgf(in);
  ASSERT_EQ(spectra.size(), 1U);
  EXPECT_EQ(spectra[0].precursor_charge, 0);  // unknown, not guessed

  // The writer must not invent a CHARGE line for unknown charge.
  std::stringstream io;
  write_mgf(io, spectra);
  EXPECT_EQ(io.str().find("CHARGE"), std::string::npos);
  const auto back = read_mgf(io);
  ASSERT_EQ(back.size(), 1U);
  EXPECT_EQ(back[0].precursor_charge, 0);
}

TEST(Mgf, UnparsableChargeIsZeroNotError) {
  std::istringstream in("BEGIN IONS\nPEPMASS=445\nCHARGE=??\n100 1\nEND IONS\n");
  const auto spectra = read_mgf(in);
  ASSERT_EQ(spectra.size(), 1U);
  EXPECT_EQ(spectra[0].precursor_charge, 0);
}

}  // namespace
}  // namespace spechd::ms
