// Failure injection across all file formats: every reader must reject
// corrupted input with spechd::parse_error — never crash, hang, or return
// silently-wrong data — and all formats must agree on the same spectra
// (cross-format round trips).
#include <gtest/gtest.h>

#include <sstream>

#include "ms/mgf.hpp"
#include "ms/ms2.hpp"
#include "ms/mzml.hpp"
#include "ms/mzxml.hpp"
#include "ms/synthetic.hpp"
#include "util/error.hpp"

namespace spechd::ms {
namespace {

std::vector<spectrum> sample_spectra() {
  synthetic_config c;
  c.peptide_count = 8;
  c.spectra_per_peptide_mean = 2.0;
  c.seed = 3;
  return generate_dataset(c).spectra;
}

// --- cross-format agreement -----------------------------------------------

void expect_equivalent(const std::vector<spectrum>& a, const std::vector<spectrum>& b,
                       double intensity_tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].precursor_mz, b[i].precursor_mz, 1e-6) << i;
    EXPECT_EQ(a[i].precursor_charge, b[i].precursor_charge) << i;
    ASSERT_EQ(a[i].peaks.size(), b[i].peaks.size()) << i;
    for (std::size_t p = 0; p < a[i].peaks.size(); ++p) {
      EXPECT_NEAR(a[i].peaks[p].mz, b[i].peaks[p].mz, 1e-6) << i << ":" << p;
      EXPECT_NEAR(a[i].peaks[p].intensity, b[i].peaks[p].intensity,
                  intensity_tol * (1.0 + a[i].peaks[p].intensity))
          << i << ":" << p;
    }
  }
}

TEST(CrossFormat, MgfAndMzmlAgree) {
  const auto spectra = sample_spectra();
  std::stringstream mgf_io;
  write_mgf(mgf_io, spectra);
  std::stringstream mzml_io;
  write_mzml(mzml_io, spectra);
  expect_equivalent(read_mgf(mgf_io), read_mzml(mzml_io), 1e-4);
}

TEST(CrossFormat, MzxmlAndMs2Agree) {
  const auto spectra = sample_spectra();
  std::stringstream mzxml_io;
  write_mzxml(mzxml_io, spectra);
  std::stringstream ms2_io;
  write_ms2(ms2_io, spectra);
  expect_equivalent(read_mzxml(mzxml_io), read_ms2(ms2_io), 1e-3);
}

TEST(CrossFormat, ChainedConversionStable) {
  // mgf -> mzml -> mzxml -> ms2: peaks must survive the whole chain.
  const auto original = sample_spectra();
  std::stringstream s1;
  write_mzml(s1, original);
  const auto via_mzml = read_mzml(s1);
  std::stringstream s2;
  write_mzxml(s2, via_mzml);
  const auto via_mzxml = read_mzxml(s2);
  std::stringstream s3;
  write_ms2(s3, via_mzxml);
  const auto final_spectra = read_ms2(s3);
  expect_equivalent(original, final_spectra, 1e-3);
}

// --- failure injection ------------------------------------------------------

TEST(Robustness, MgfCorruptions) {
  const char* bad_inputs[] = {
      "BEGIN IONS\nPEPMASS=abc\n100 1\nEND IONS\n",   // unparsable pepmass
      "BEGIN IONS\nPEPMASS=100\n100 1 extra bad\nEND IONS\nEND IONS\n",  // stray END
      "BEGIN IONS\nPEPMASS=100\nnan_peak x\nEND IONS\n",  // bad peak line
  };
  for (const auto* text : bad_inputs) {
    std::istringstream in(text);
    EXPECT_THROW(read_mgf(in), parse_error) << text;
  }
}

TEST(Robustness, Ms2Corruptions) {
  const char* bad_inputs[] = {
      "Z\t2\t900\n",                 // Z before S
      "I\tRTime\t1.0\n",             // I before S
      "S\tx\ty\tz\n",                // unparsable S line
      "S\t1\t1\t500\nbadpeak\n",     // bad peak line
  };
  for (const auto* text : bad_inputs) {
    std::istringstream in(text);
    EXPECT_THROW(read_ms2(in), parse_error) << text;
  }
}

TEST(Robustness, MzmlCorruptions) {
  // Unterminated tag.
  {
    std::istringstream in("<mzML><run><spectrum index=\"0\" ");
    EXPECT_THROW(read_mzml(in), parse_error);
  }
  // Invalid base64 payload in a binary array.
  {
    std::istringstream in(R"(<mzML><run id="r"><spectrumList count="1">
<spectrum index="0" id="scan=1" defaultArrayLength="1">
  <cvParam accession="MS:1000511" name="ms level" value="2"/>
  <binaryDataArrayList count="1"><binaryDataArray>
    <cvParam accession="MS:1000523" name="64-bit float"/>
    <cvParam accession="MS:1000514" name="m/z array"/>
    <binary>!!!invalid!!!</binary>
  </binaryDataArray></binaryDataArrayList>
</spectrum></spectrumList></run></mzML>)");
    EXPECT_THROW(read_mzml(in), parse_error);
  }
  // Binary array with a non-multiple-of-8 byte count.
  {
    std::istringstream in(R"(<mzML><run id="r"><spectrumList count="1">
<spectrum index="0" id="scan=1" defaultArrayLength="1">
  <cvParam accession="MS:1000511" name="ms level" value="2"/>
  <binaryDataArrayList count="1"><binaryDataArray>
    <cvParam accession="MS:1000523" name="64-bit float"/>
    <cvParam accession="MS:1000514" name="m/z array"/>
    <binary>AAAA</binary>
  </binaryDataArray></binaryDataArrayList>
</spectrum></spectrumList></run></mzML>)");
    EXPECT_THROW(read_mzml(in), parse_error);
  }
}

TEST(Robustness, MzxmlCorruptions) {
  // Unquoted attribute.
  {
    std::istringstream in("<mzXML><scan num=3></scan></mzXML>");
    EXPECT_THROW(read_mzxml(in), parse_error);
  }
  // Garbage precursor value.
  {
    std::istringstream in(R"(<mzXML><msRun><scan num="1" msLevel="2">
      <precursorMz precursorCharge="2">not_a_number</precursorMz>
      <peaks precision="32" byteOrder="network" contentType="m/z-int"></peaks>
      </scan></msRun></mzXML>)");
    EXPECT_THROW(read_mzxml(in), parse_error);
  }
}

TEST(Robustness, EmptyInputsAreEmptyNotErrors) {
  std::istringstream a("");
  EXPECT_TRUE(read_mgf(a).empty());
  std::istringstream b("");
  EXPECT_TRUE(read_ms2(b).empty());
  std::istringstream c("<mzML></mzML>");
  EXPECT_TRUE(read_mzml(c).empty());
  std::istringstream d("<mzXML></mzXML>");
  EXPECT_TRUE(read_mzxml(d).empty());
}

TEST(Robustness, ReadersIgnoreUnknownElements) {
  std::istringstream in(R"(<mzXML><msRun><futureElement attr="1">text</futureElement>
    <scan num="1" msLevel="2" peaksCount="0">
      <precursorMz precursorCharge="2">500</precursorMz>
      <peaks precision="64" byteOrder="network" contentType="m/z-int"></peaks>
    </scan></msRun></mzXML>)");
  EXPECT_EQ(read_mzxml(in).size(), 1U);
}

}  // namespace
}  // namespace spechd::ms
