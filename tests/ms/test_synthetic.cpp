#include "ms/synthetic.hpp"

#include <gtest/gtest.h>

#include <set>

namespace spechd::ms {
namespace {

synthetic_config small_config() {
  synthetic_config c;
  c.peptide_count = 20;
  c.spectra_per_peptide_mean = 5.0;
  c.seed = 7;
  return c;
}

TEST(SyntheticLibrary, CorrectCountAndTrypticEnds) {
  const auto lib = random_peptide_library(small_config());
  ASSERT_EQ(lib.size(), 20U);
  for (const auto& p : lib) {
    const char last = p.sequence().back();
    EXPECT_TRUE(last == 'K' || last == 'R') << p.sequence();
    EXPECT_GE(p.length(), small_config().min_peptide_length);
    EXPECT_LE(p.length(), small_config().max_peptide_length);
  }
}

TEST(SyntheticLibrary, DeterministicInSeed) {
  const auto a = random_peptide_library(small_config());
  const auto b = random_peptide_library(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].sequence(), b[i].sequence());
}

TEST(SyntheticLibrary, DifferentSeedsDiffer) {
  auto c2 = small_config();
  c2.seed = 8;
  const auto a = random_peptide_library(small_config());
  const auto b = random_peptide_library(c2);
  bool any_different = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].sequence() != b[i].sequence()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(SyntheticDataset, EveryLabelWithinLibrary) {
  const auto ds = generate_dataset(small_config());
  EXPECT_EQ(ds.library.size(), 20U);
  EXPECT_GE(ds.spectra.size(), 20U);  // at least one replicate each
  for (const auto& s : ds.spectra) {
    ASSERT_GE(s.label, 0);
    ASSERT_LT(s.label, static_cast<std::int32_t>(ds.library.size()));
  }
}

TEST(SyntheticDataset, AllLabelsRepresented) {
  const auto ds = generate_dataset(small_config());
  std::set<std::int32_t> seen;
  for (const auto& s : ds.spectra) seen.insert(s.label);
  EXPECT_EQ(seen.size(), ds.library.size());
}

TEST(SyntheticDataset, Deterministic) {
  const auto a = generate_dataset(small_config());
  const auto b = generate_dataset(small_config());
  ASSERT_EQ(a.spectra.size(), b.spectra.size());
  for (std::size_t i = 0; i < a.spectra.size(); ++i) {
    EXPECT_EQ(a.spectra[i].title, b.spectra[i].title);
    EXPECT_EQ(a.spectra[i].peaks.size(), b.spectra[i].peaks.size());
  }
}

TEST(SyntheticDataset, PeaksSortedAndInWindow) {
  const auto config = small_config();
  const auto ds = generate_dataset(config);
  for (const auto& s : ds.spectra) {
    ASSERT_TRUE(peaks_sorted(s));
    for (const auto& p : s.peaks) {
      ASSERT_GE(p.mz, config.mz_min);
      ASSERT_LE(p.mz, config.mz_max);
    }
  }
}

TEST(SyntheticDataset, UnlabelledFractionProducesNoise) {
  auto c = small_config();
  c.unlabelled_fraction = 0.2;
  const auto ds = generate_dataset(c);
  std::size_t noise = 0;
  for (const auto& s : ds.spectra) noise += s.label == unlabelled ? 1 : 0;
  EXPECT_GT(noise, 0U);
}

TEST(SyntheticDataset, ScansUnique) {
  const auto ds = generate_dataset(small_config());
  std::set<std::uint32_t> scans;
  for (const auto& s : ds.spectra) scans.insert(s.scan);
  EXPECT_EQ(scans.size(), ds.spectra.size());
}

TEST(NoisyReplicate, SameSeedSameResult) {
  const peptide p("ELVISLIVESK");
  const auto config = small_config();
  const auto a = noisy_replicate(p, 2, config, 123);
  const auto b = noisy_replicate(p, 2, config, 123);
  ASSERT_EQ(a.peaks.size(), b.peaks.size());
  for (std::size_t i = 0; i < a.peaks.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.peaks[i].mz, b.peaks[i].mz);
  }
}

TEST(NoisyReplicate, ReplicatesOfSamePeptideSimilar) {
  const peptide p("ELVISLIVESK");
  auto config = small_config();
  config.noise_peaks_per_spectrum = 5.0;
  const auto a = noisy_replicate(p, 2, config, 1);
  const auto b = noisy_replicate(p, 2, config, 2);
  // Replicates share most fragment bins -> high binned cosine.
  EXPECT_GT(binned_cosine(a, b, 1.0), 0.5);
}

TEST(NoisyReplicate, DifferentPeptidesDissimilar) {
  auto config = small_config();
  config.noise_peaks_per_spectrum = 5.0;
  const auto a = noisy_replicate(peptide("ELVISLIVESK"), 2, config, 1);
  const auto b = noisy_replicate(peptide("WHATTHEFAK"), 2, config, 1);
  EXPECT_LT(binned_cosine(a, b, 1.0), 0.4);
}

}  // namespace
}  // namespace spechd::ms
