#include "ms/mzxml.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace spechd::ms {
namespace {

spectrum sample_spectrum() {
  spectrum s;
  s.scan = 42;
  s.precursor_mz = 733.3871;
  s.precursor_charge = 2;
  s.retention_time = 125.5;
  s.peaks = {{147.1128, 230.5F}, {245.0768, 11.0F}, {1021.5, 99.5F}};
  return s;
}

TEST(Mzxml, RoundTrip) {
  std::stringstream io;
  write_mzxml(io, {sample_spectrum()});
  const auto back = read_mzxml(io);
  ASSERT_EQ(back.size(), 1U);
  const auto& s = back[0];
  EXPECT_EQ(s.scan, 42U);
  EXPECT_NEAR(s.precursor_mz, 733.3871, 1e-9);
  EXPECT_EQ(s.precursor_charge, 2);
  EXPECT_NEAR(s.retention_time, 125.5, 1e-9);
  ASSERT_EQ(s.peaks.size(), 3U);
  EXPECT_NEAR(s.peaks[0].mz, 147.1128, 1e-9);
  EXPECT_NEAR(s.peaks[0].intensity, 230.5F, 1e-3);
}

TEST(Mzxml, Parses32BitNetworkOrderPeaks) {
  // One peak (100.0, 7.0) in 32-bit network order:
  // 100.0f = 0x42C80000, 7.0f = 0x40E00000 -> base64("\x42\xC8\x00\x00\x40\xE0\x00\x00").
  std::istringstream in(R"(<mzXML><msRun scanCount="1">
  <scan num="1" msLevel="2" peaksCount="1">
   <precursorMz precursorCharge="2">500.5</precursorMz>
   <peaks precision="32" byteOrder="network" contentType="m/z-int">QsgAAEDgAAA=</peaks>
  </scan></msRun></mzXML>)");
  const auto back = read_mzxml(in);
  ASSERT_EQ(back.size(), 1U);
  ASSERT_EQ(back[0].peaks.size(), 1U);
  EXPECT_FLOAT_EQ(static_cast<float>(back[0].peaks[0].mz), 100.0F);
  EXPECT_FLOAT_EQ(back[0].peaks[0].intensity, 7.0F);
  EXPECT_DOUBLE_EQ(back[0].precursor_mz, 500.5);
}

TEST(Mzxml, SkipsMs1Scans) {
  std::istringstream in(R"(<mzXML><msRun scanCount="2">
  <scan num="1" msLevel="1" peaksCount="0">
   <peaks precision="32" byteOrder="network" contentType="m/z-int"></peaks>
  </scan>
  <scan num="2" msLevel="2" peaksCount="0">
   <precursorMz precursorCharge="2">500.5</precursorMz>
   <peaks precision="32" byteOrder="network" contentType="m/z-int"></peaks>
  </scan></msRun></mzXML>)");
  const auto back = read_mzxml(in);
  ASSERT_EQ(back.size(), 1U);
  EXPECT_EQ(back[0].scan, 2U);
}

TEST(Mzxml, RejectsCompressedPeaks) {
  std::istringstream in(R"(<mzXML><msRun scanCount="1">
  <scan num="1" msLevel="2" peaksCount="1">
   <peaks precision="32" byteOrder="network" contentType="m/z-int"
          compressionType="zlib">QsgAAEDgAAA=</peaks>
  </scan></msRun></mzXML>)");
  EXPECT_THROW(read_mzxml(in), parse_error);
}

TEST(Mzxml, RejectsUnknownContentType) {
  std::istringstream in(R"(<mzXML><msRun scanCount="1">
  <scan num="1" msLevel="2" peaksCount="1">
   <peaks precision="32" byteOrder="network" contentType="int-m/z">QsgAAEDgAAA=</peaks>
  </scan></msRun></mzXML>)");
  EXPECT_THROW(read_mzxml(in), parse_error);
}

TEST(Mzxml, RejectsMisalignedPeakBlock) {
  // 6 bytes is not a multiple of 8 for 32-bit pairs.
  std::istringstream in(R"(<mzXML><msRun scanCount="1">
  <scan num="1" msLevel="2" peaksCount="1">
   <peaks precision="32" byteOrder="network" contentType="m/z-int">QsgAAEDg</peaks>
  </scan></msRun></mzXML>)");
  EXPECT_THROW(read_mzxml(in), parse_error);
}

TEST(Mzxml, RetentionTimeDurationParsed) {
  std::stringstream io;
  auto s = sample_spectrum();
  s.retention_time = 61.25;
  write_mzxml(io, {s});
  const auto back = read_mzxml(io);
  ASSERT_EQ(back.size(), 1U);
  EXPECT_NEAR(back[0].retention_time, 61.25, 1e-9);
}

TEST(Mzxml, MultipleScansRoundTrip) {
  auto a = sample_spectrum();
  auto b = sample_spectrum();
  b.scan = 43;
  b.precursor_mz = 900.25;
  std::stringstream io;
  write_mzxml(io, {a, b});
  const auto back = read_mzxml(io);
  ASSERT_EQ(back.size(), 2U);
  EXPECT_DOUBLE_EQ(back[1].precursor_mz, 900.25);
}

TEST(Mzxml, MissingFileThrows) {
  EXPECT_THROW(read_mzxml_file("/nonexistent/file.mzXML"), io_error);
}

}  // namespace
}  // namespace spechd::ms
