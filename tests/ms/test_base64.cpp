#include "ms/base64.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/error.hpp"

namespace spechd::ms {
namespace {

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

// RFC 4648 test vectors.
TEST(Base64, Rfc4648Vectors) {
  EXPECT_EQ(base64_encode(bytes("")), "");
  EXPECT_EQ(base64_encode(bytes("f")), "Zg==");
  EXPECT_EQ(base64_encode(bytes("fo")), "Zm8=");
  EXPECT_EQ(base64_encode(bytes("foo")), "Zm9v");
  EXPECT_EQ(base64_encode(bytes("foob")), "Zm9vYg==");
  EXPECT_EQ(base64_encode(bytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(base64_encode(bytes("foobar")), "Zm9vYmFy");
}

TEST(Base64, DecodeRfcVectors) {
  EXPECT_EQ(base64_decode("Zm9vYmFy"), bytes("foobar"));
  EXPECT_EQ(base64_decode("Zg=="), bytes("f"));
  EXPECT_EQ(base64_decode("Zm8="), bytes("fo"));
}

TEST(Base64, RoundTripBinary) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 300; ++i) data.push_back(static_cast<std::uint8_t>(i * 7 % 256));
  EXPECT_EQ(base64_decode(base64_encode(data)), data);
}

TEST(Base64, DecodeToleratesWhitespace) {
  EXPECT_EQ(base64_decode("Zm9v\n  YmFy"), bytes("foobar"));
}

TEST(Base64, DecodeRejectsInvalidCharacters) {
  EXPECT_THROW(base64_decode("Zm9v!"), parse_error);
}

TEST(Base64, DecodeRejectsDataAfterPadding) {
  EXPECT_THROW(base64_decode("Zg==Zg"), parse_error);
}

TEST(Base64, DecodeRejectsExcessPadding) {
  EXPECT_THROW(base64_decode("Zg==="), parse_error);
}

// Round-trip property over lengths 0..16 (covers all padding cases).
class Base64Lengths : public ::testing::TestWithParam<int> {};

TEST_P(Base64Lengths, RoundTrip) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < GetParam(); ++i) data.push_back(static_cast<std::uint8_t>(255 - i));
  EXPECT_EQ(base64_decode(base64_encode(data)), data);
}

INSTANTIATE_TEST_SUITE_P(AllPaddings, Base64Lengths, ::testing::Range(0, 17));

}  // namespace
}  // namespace spechd::ms
