#include "ms/ms2.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace spechd::ms {
namespace {

TEST(Ms2, ParsesHeaderScanAndPeaks) {
  std::istringstream in(
      "H\tCreationDate\ttoday\n"
      "S\t12\t12\t445.5\n"
      "I\tRTime\t1.5\n"
      "Z\t2\t890.0\n"
      "100.5 10\n"
      "200.0 20\n");
  const auto spectra = read_ms2(in);
  ASSERT_EQ(spectra.size(), 1U);
  EXPECT_EQ(spectra[0].scan, 12U);
  EXPECT_DOUBLE_EQ(spectra[0].precursor_mz, 445.5);
  EXPECT_EQ(spectra[0].precursor_charge, 2);
  EXPECT_DOUBLE_EQ(spectra[0].retention_time, 90.0);  // 1.5 min
  EXPECT_EQ(spectra[0].peaks.size(), 2U);
}

TEST(Ms2, MultipleScans) {
  std::istringstream in(
      "S\t1\t1\t400\n100 1\n"
      "S\t2\t2\t500\n200 2\n300 3\n");
  const auto spectra = read_ms2(in);
  ASSERT_EQ(spectra.size(), 2U);
  EXPECT_EQ(spectra[0].peaks.size(), 1U);
  EXPECT_EQ(spectra[1].peaks.size(), 2U);
}

TEST(Ms2, PeakBeforeScanThrows) {
  std::istringstream in("100 1\n");
  EXPECT_THROW(read_ms2(in), parse_error);
}

TEST(Ms2, BadScanLineThrows) {
  std::istringstream in("S\tnot_a_number\n");
  EXPECT_THROW(read_ms2(in), parse_error);
}

TEST(Ms2, ZLineBeforeScanThrows) {
  std::istringstream in("Z\t2\t890\n");
  EXPECT_THROW(read_ms2(in), parse_error);
}

TEST(Ms2, RoundTrip) {
  spectrum s;
  s.scan = 77;
  s.precursor_mz = 612.301;
  s.precursor_charge = 3;
  s.retention_time = 360.0;
  s.peaks = {{110.0, 4.0F}, {220.5, 8.0F}};

  std::stringstream io;
  write_ms2(io, {s});
  const auto back = read_ms2(io);
  ASSERT_EQ(back.size(), 1U);
  EXPECT_EQ(back[0].scan, 77U);
  EXPECT_NEAR(back[0].precursor_mz, 612.301, 1e-6);
  EXPECT_EQ(back[0].precursor_charge, 3);
  EXPECT_NEAR(back[0].retention_time, 360.0, 1e-6);
  ASSERT_EQ(back[0].peaks.size(), 2U);
  EXPECT_NEAR(back[0].peaks[1].mz, 220.5, 1e-6);
}

TEST(Ms2, EmptyStreamYieldsNothing) {
  std::istringstream in("");
  EXPECT_TRUE(read_ms2(in).empty());
}

// --- robustness: CRLF, empty spectra, missing Z (charge) lines --------------

namespace {
std::string to_crlf(const std::string& text) {
  std::string out;
  out.reserve(text.size() * 2);
  for (const char c : text) {
    if (c == '\n') out += '\r';
    out += c;
  }
  return out;
}
}  // namespace

TEST(Ms2, CrlfLineEndingsRoundTrip) {
  spectrum s;
  s.scan = 77;
  s.precursor_mz = 612.301;
  s.precursor_charge = 3;
  s.retention_time = 360.0;
  s.peaks = {{110.0, 4.0F}, {220.5, 8.0F}};

  std::stringstream unix_io;
  write_ms2(unix_io, {s});
  std::istringstream crlf_in(to_crlf(unix_io.str()));
  const auto back = read_ms2(crlf_in);
  ASSERT_EQ(back.size(), 1U);
  EXPECT_EQ(back[0].scan, 77U);
  EXPECT_NEAR(back[0].precursor_mz, 612.301, 1e-6);
  EXPECT_EQ(back[0].precursor_charge, 3);
  EXPECT_NEAR(back[0].retention_time, 360.0, 1e-6);
  ASSERT_EQ(back[0].peaks.size(), 2U);
  EXPECT_NEAR(back[0].peaks[1].mz, 220.5, 1e-6);
}

TEST(Ms2, CrlfBlankLinesAreSkipped) {
  // A CRLF file's "blank" lines arrive as "\r" after getline; they must be
  // treated as blank, not as a one-character peak line.
  std::istringstream in("\r\nS\t1\t1\t500\r\n\r\n100 1\r\n\r\n");
  const auto spectra = read_ms2(in);
  ASSERT_EQ(spectra.size(), 1U);
  EXPECT_DOUBLE_EQ(spectra[0].precursor_mz, 500.0);
  ASSERT_EQ(spectra[0].peaks.size(), 1U);
}

TEST(Ms2, EmptySpectrumRoundTrips) {
  // An S record with no peak lines is a valid empty spectrum.
  std::istringstream in(
      "S\t1\t1\t400\n"
      "S\t2\t2\t500\n100 1\n");
  const auto spectra = read_ms2(in);
  ASSERT_EQ(spectra.size(), 2U);
  EXPECT_TRUE(spectra[0].peaks.empty());
  EXPECT_DOUBLE_EQ(spectra[0].precursor_mz, 400.0);

  std::stringstream io;
  write_ms2(io, spectra);
  const auto back = read_ms2(io);
  ASSERT_EQ(back.size(), 2U);
  EXPECT_TRUE(back[0].peaks.empty());
  ASSERT_EQ(back[1].peaks.size(), 1U);
}

TEST(Ms2, MissingZLineIsUnknownChargeAndRoundTrips) {
  std::istringstream in("S\t5\t5\t450.25\n100 1\n");
  const auto spectra = read_ms2(in);
  ASSERT_EQ(spectra.size(), 1U);
  EXPECT_EQ(spectra[0].precursor_charge, 0);  // unknown, not guessed

  // The writer must not invent a Z line for unknown charge.
  std::stringstream io;
  write_ms2(io, spectra);
  EXPECT_EQ(io.str().find("Z\t"), std::string::npos);
  const auto back = read_ms2(io);
  ASSERT_EQ(back.size(), 1U);
  EXPECT_EQ(back[0].precursor_charge, 0);
  EXPECT_NEAR(back[0].precursor_mz, 450.25, 1e-6);
}

TEST(Ms2, TrailingCrOnFinalUnterminatedLine) {
  // No trailing newline at all, last line still CR-terminated.
  std::istringstream in("S\t1\t1\t500\r\n100 1\r");
  const auto spectra = read_ms2(in);
  ASSERT_EQ(spectra.size(), 1U);
  ASSERT_EQ(spectra[0].peaks.size(), 1U);
  EXPECT_NEAR(spectra[0].peaks[0].mz, 100.0, 1e-9);
}

}  // namespace
}  // namespace spechd::ms
