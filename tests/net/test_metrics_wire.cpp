// Metrics wire surface: get_metrics/metrics_ok round-trips (every field,
// including slow-request stage breakdowns), rejection of truncated and
// corrupt bodies, and a live loopback server answering metrics scrapes
// mid-ingest without blocking the writers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "ms/synthetic.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/service.hpp"
#include "util/crc32.hpp"

namespace spechd::net {
namespace {

/// Decodes exactly one frame from `bytes`, asserting success.
frame_view decode_one(const std::string& bytes) {
  frame_view frame;
  const auto status =
      decode_frame(bytes.data(), bytes.size(), k_default_max_frame_bytes, frame);
  EXPECT_EQ(status, decode_status::ok);
  return frame;
}

/// A snapshot exercising every wire field: counters, a signed gauge,
/// histograms with and without buckets, and slow entries with stages.
wire_metrics sample_metrics() {
  wire_metrics m;
  m.snapshot.counters = {{"spechd_test_a_total", 42}, {"spechd_test_b_total", 0}};
  m.snapshot.gauges = {{"spechd_test_depth", -7}};
  obs::histogram_sample h;
  h.name = "spechd_test_latency_ns";
  h.unit = "ns";
  h.count = 3;
  h.sum = 1234567;
  h.buckets = {{0, 0, 1}, {4096, 4351, 2}};
  m.snapshot.histograms = {h, {"spechd_test_empty_ns", "ns", 0, 0, {}}};
  obs::slow_request slow;
  slow.kind = "ingest";
  slow.seq = 99;
  slow.total_ns = 50'000'000;
  slow.stages = {{obs::stage::net_parse, 1000}, {obs::stage::enqueue, 49'000'000}};
  m.slow = {slow, {"query", 100, 12'000'000, {{obs::stage::merge, 5}}}};
  return m;
}

TEST(NetMetrics, RequestAndResponseRoundTrip) {
  std::string req;
  encode_metrics_request(req, 11);
  const auto req_frame = decode_one(req);
  EXPECT_EQ(req_frame.type, msg_type::get_metrics);
  EXPECT_EQ(req_frame.request_id, 11u);

  const auto metrics = sample_metrics();
  std::string resp;
  encode_metrics_response(resp, 11, metrics);
  const auto resp_frame = decode_one(resp);
  EXPECT_EQ(resp_frame.type, msg_type::metrics_ok);
  wire_metrics round;
  ASSERT_TRUE(parse_metrics_response(resp_frame, round));
  EXPECT_EQ(round, metrics);
}

TEST(NetMetrics, EmptySnapshotRoundTrips) {
  std::string resp;
  encode_metrics_response(resp, 5, wire_metrics{});
  wire_metrics round;
  ASSERT_TRUE(parse_metrics_response(decode_one(resp), round));
  EXPECT_EQ(round, wire_metrics{});
}

TEST(NetMetrics, TruncatedBodiesAreRejectedAtEveryLength) {
  // Chop the valid payload at every length: a parser that reads past the
  // end of any truncation is a heap overread waiting for ASan.
  std::string resp;
  encode_metrics_response(resp, 7, sample_metrics());
  const auto full = decode_one(resp);
  for (std::uint32_t len = 0; len < full.body_bytes; ++len) {
    frame_view truncated = full;
    truncated.body_bytes = len;
    wire_metrics out;
    EXPECT_FALSE(parse_metrics_response(truncated, out)) << "length " << len;
  }
}

TEST(NetMetrics, HostileCountsAndBadStagesAreRejected) {
  std::string resp;
  encode_metrics_response(resp, 7, sample_metrics());
  const auto full = decode_one(resp);
  const char* body = full.body;
  const std::size_t body_size = full.body_bytes;

  // Declare 2^30 counters in a tiny body: the parser must bound every
  // count against the bytes actually present.
  {
    std::string mutated(body, body_size);
    const std::uint32_t huge = 1u << 30;
    std::memcpy(mutated.data(), &huge, sizeof(huge));
    frame_view hacked = full;
    hacked.body = mutated.data();
    wire_metrics out;
    EXPECT_FALSE(parse_metrics_response(hacked, out));
  }

  // Corrupt a slow-request stage id to an out-of-range value: the last
  // stage byte in the payload is 9 bytes from the end of the last stage
  // record (stage u8 + ns u64), which itself ends the body.
  {
    std::string mutated(body, body_size);
    mutated[body_size - 9] = static_cast<char>(obs::k_stage_max + 1);
    frame_view hacked = full;
    hacked.body = mutated.data();
    wire_metrics out;
    EXPECT_FALSE(parse_metrics_response(hacked, out));
  }

  // Trailing garbage after a well-formed body is also malformed.
  {
    std::string mutated(body, body_size);
    mutated += '\0';
    frame_view hacked = full;
    hacked.body = mutated.data();
    hacked.body_bytes = static_cast<std::uint32_t>(mutated.size());
    wire_metrics out;
    EXPECT_FALSE(parse_metrics_response(hacked, out));
  }
}

TEST(NetMetrics, LiveServerAnswersMetricsMidIngestWithoutBlockingWriters) {
  ms::synthetic_config data_config;
  data_config.peptide_count = 24;
  data_config.spectra_per_peptide_mean = 4.0;
  data_config.seed = 31;
  const auto stream = ms::generate_dataset(data_config).spectra;

  serve::serve_config sc;
  sc.pipeline.encoder.dim = 1024;
  sc.pipeline.threads = 1;
  sc.shards = 2;
  sc.queue_capacity = 8;
  serve::clustering_service service(sc);
  server srv(service, server_config{});

  // Producer streams small batches while the main thread scrapes: the
  // scrape must return promptly every time (snapshots are relaxed sums —
  // no locks shared with the writers) and never perturb the ingest.
  std::atomic<bool> done{false};
  std::thread producer([&] {
    client cli("127.0.0.1", srv.port());
    for (std::size_t i = 0; i + 8 <= stream.size(); i += 8) {
      const std::vector<ms::spectrum> batch(
          stream.begin() + static_cast<std::ptrdiff_t>(i),
          stream.begin() + static_cast<std::ptrdiff_t>(i) + 8);
      for (;;) {
        if (cli.ingest(batch).accepted) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    done = true;
  });

  client scraper("127.0.0.1", srv.port());
  std::size_t scrapes = 0;
  while (!done.load()) {
    const auto m = scraper.metrics();
    ++scrapes;
    // Mid-ingest scrapes see a consistent prefix of the stream: the
    // ingest counter is monotone and histograms carry matching samples.
    if (const auto* c = m.snapshot.find_counter("spechd_ingest_records_total")) {
      EXPECT_GE(c->value, 0u);
    }
  }
  producer.join();
  service.drain();
  EXPECT_GE(scrapes, 1u);

  const auto final_metrics = scraper.metrics();
  const auto* ingested =
      final_metrics.snapshot.find_counter("spechd_ingest_records_total");
  ASSERT_NE(ingested, nullptr);
  EXPECT_GT(ingested->value, 0u);
  const auto* batches =
      final_metrics.snapshot.find_counter("spechd_ingest_batches_total");
  ASSERT_NE(batches, nullptr);
  EXPECT_GT(batches->value, 0u);
  // The per-stage ingest histograms saw traffic too (armed by default).
  const auto* enqueue =
      final_metrics.snapshot.find_histogram("spechd_ingest_enqueue_ns");
  ASSERT_NE(enqueue, nullptr);
  EXPECT_GT(enqueue->count, 0u);
  const auto* net_req =
      final_metrics.snapshot.find_histogram("spechd_net_ingest_request_ns");
  ASSERT_NE(net_req, nullptr);
  EXPECT_GT(net_req->count, 0u);
}

}  // namespace
}  // namespace spechd::net
