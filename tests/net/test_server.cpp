// Network serving tier, end-to-end over loopback: the golden guarantee
// (networked ingest/query is bit-identical to driving the
// clustering_service in-process, at shard counts {1, 4}), admission
// control shedding, disconnect/SIGPIPE survival, the malformed-frame
// suite (truncated length, oversized length, bad CRC, slowloris, garbage
// bytes), and stall-timeout behaviour.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "ms/synthetic.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "util/crc32.hpp"
#include "util/endian.hpp"
#include "util/failpoint.hpp"

namespace spechd::net {
namespace {

std::vector<ms::spectrum> sample_stream(std::size_t peptides = 24,
                                        std::uint64_t seed = 77) {
  ms::synthetic_config config;
  config.peptide_count = peptides;
  config.spectra_per_peptide_mean = 4.0;
  config.noise_peaks_per_spectrum = 20.0;
  config.seed = seed;
  return ms::generate_dataset(config).spectra;
}

serve::serve_config make_serve_config(std::size_t shards) {
  serve::serve_config sc;
  sc.pipeline.encoder.dim = 1024;
  sc.pipeline.threads = 1;
  sc.shards = shards;
  sc.queue_capacity = 4;
  return sc;
}

void ingest_in_batches(serve::clustering_service& service,
                       const std::vector<ms::spectrum>& stream, std::size_t batch = 17) {
  for (std::size_t i = 0; i < stream.size(); i += batch) {
    const auto stop = std::min(i + batch, stream.size());
    service.ingest({stream.begin() + static_cast<std::ptrdiff_t>(i),
                    stream.begin() + static_cast<std::ptrdiff_t>(stop)});
  }
}

// --- raw-socket helpers (for bytes no well-behaved client would send) --------

struct raw_conn {
  int fd = -1;

  explicit raw_conn(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const timeval tv{5, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~raw_conn() {
    if (fd >= 0) ::close(fd);
  }

  void send_all(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Reads until one complete frame decodes (fails the test on EOF/garbage).
  frame_view read_frame(std::string& buffer) {
    char buf[4096];
    for (;;) {
      frame_view frame;
      const auto status = decode_frame(buffer.data(), buffer.size(),
                                       k_default_max_frame_bytes, frame);
      if (status == decode_status::ok) return frame;
      EXPECT_EQ(status, decode_status::need_more);
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        ADD_FAILURE() << "connection closed while waiting for a frame";
        return frame;
      }
      buffer.append(buf, static_cast<std::size_t>(n));
    }
  }

  /// Expects a typed error frame, returns its code.
  error_code read_error(std::string& buffer) {
    const auto frame = read_frame(buffer);
    EXPECT_EQ(frame.type, msg_type::error);
    error_code code{};
    std::string message;
    EXPECT_TRUE(parse_error_response(frame, code, message));
    buffer.erase(0, frame.frame_bytes);
    return code;
  }

  /// Sends a well-formed hello and consumes the hello_ok.
  void handshake(std::string& buffer) {
    std::string hello;
    encode_hello_request(hello, 1);
    send_all(hello);
    const auto frame = read_frame(buffer);
    ASSERT_EQ(frame.type, msg_type::hello_ok);
    buffer.erase(0, frame.frame_bytes);
  }

  /// True when the server has closed its end: clean FIN, or RST when the
  /// server closed with our bytes still unread (reset is how TCP reports
  /// that close). A recv timeout (server still open, nothing sent) is
  /// false.
  bool reads_eof() {
    char buf[64];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) return true;
    return n < 0 && errno != EAGAIN && errno != EWOULDBLOCK;
  }
};

/// Frame with arbitrary payload bytes (valid CRC over whatever is given).
std::string raw_frame(const std::string& payload) {
  std::string out;
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  out.append(reinterpret_cast<const char*>(&len), sizeof(len));
  out.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  out += payload;
  return out;
}

// --- golden equivalence ------------------------------------------------------

TEST(NetServer, NetworkedIngestAndQueryMatchInProcessBitIdentically) {
  const auto stream = sample_stream(32, 5);
  const auto queries = sample_stream(8, 99);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));

    // Reference: the service driven in-process.
    serve::clustering_service reference(make_serve_config(shards));
    ingest_in_batches(reference, stream);
    reference.drain();

    // Same batches over the wire. Admission control is off the table
    // here (the shed suite covers it): a huge threshold keeps every
    // batch accepted so the comparison is exact.
    serve::clustering_service served(make_serve_config(shards));
    server_config config;
    config.shed_queue_depth = 1u << 20;
    server srv(served, config);
    client cli("127.0.0.1", srv.port());
    for (std::size_t i = 0; i < stream.size(); i += 17) {
      const auto stop = std::min(i + 17, stream.size());
      const std::vector<ms::spectrum> batch(
          stream.begin() + static_cast<std::ptrdiff_t>(i),
          stream.begin() + static_cast<std::ptrdiff_t>(stop));
      const auto r = cli.ingest(batch);
      ASSERT_TRUE(r.accepted);
      ASSERT_EQ(r.count, batch.size());
    }
    cli.drain();

    EXPECT_EQ(serve::canonical_state(served.export_states()),
              serve::canonical_state(reference.export_states()));

    // Queries answered over the wire are field-exact vs in-process.
    for (const auto& q : queries) {
      const auto local = reference.query(q);
      const auto remote = cli.query(q);
      EXPECT_EQ(remote.encodable, local.encodable);
      EXPECT_EQ(remote.matched, local.matched);
      EXPECT_EQ(remote.bucket_key, local.bucket_key);
      EXPECT_EQ(remote.shard, local.shard);
      EXPECT_EQ(remote.local_label, local.local_label);
      EXPECT_EQ(remote.distance, local.distance);
      EXPECT_EQ(remote.nearest_member, local.nearest_member);
      EXPECT_EQ(remote.cluster_size, local.cluster_size);
    }

    const auto stats = cli.stats();
    EXPECT_EQ(stats.record_count, stream.size());
    EXPECT_EQ(stats.failed_shards, 0u);
  }
}

TEST(NetServer, PipelinedQueriesReturnInOrder) {
  serve::clustering_service service(make_serve_config(2));
  ingest_in_batches(service, sample_stream(16, 3));
  service.drain();
  server srv(service, server_config{});
  client cli("127.0.0.1", srv.port());

  const auto queries = sample_stream(6, 42);
  for (const auto& q : queries) cli.send_query(q);
  for (const auto& q : queries) {
    const auto local = service.query(q);
    const auto remote = cli.read_query_response();
    EXPECT_EQ(remote.matched, local.matched);
    EXPECT_EQ(remote.bucket_key, local.bucket_key);
    EXPECT_EQ(remote.distance, local.distance);
  }
}

// --- admission control -------------------------------------------------------

TEST(NetServer, ShedsIngestWithTypedResponseWhenOverloaded) {
  serve::clustering_service service(make_serve_config(2));
  server_config config;
  config.shed_queue_depth = 0;  // shed every ingest: queues are "full" at 0
  server srv(service, config);
  client cli("127.0.0.1", srv.port());

  const auto stream = sample_stream(4, 9);
  const auto r = cli.ingest(stream);
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.code, error_code::shed_load);
  EXPECT_NE(r.message.find("retry"), std::string::npos);

  // Shedding is per-request, not per-connection: the same connection
  // still answers queries and pings.
  cli.ping();
  const auto q = cli.query(stream.front());
  EXPECT_TRUE(q.encodable);
  EXPECT_EQ(srv.counters().shed, 1u);
  EXPECT_EQ(service.stats().record_count, 0u);
}

// --- disconnects / SIGPIPE ---------------------------------------------------

TEST(NetServer, ClientVanishingMidStreamLeavesServerServing) {
  serve::clustering_service service(make_serve_config(2));
  ingest_in_batches(service, sample_stream(16, 3));
  service.drain();
  server srv(service, server_config{});

  {
    // A client that handshakes, fires queries, and vanishes without ever
    // reading a byte of response: the server must take the EPIPE on that
    // connection (MSG_NOSIGNAL + ignored SIGPIPE), not die.
    client doomed("127.0.0.1", srv.port());
    for (const auto& q : sample_stream(4, 11)) doomed.send_query(q);
    // dtor closes abruptly with responses still queued server-side
  }
  {
    // Another client mid-frame: half a header then gone.
    raw_conn torn(srv.port());
    std::string buffer;
    torn.handshake(buffer);
    torn.send_all(std::string("\x20\x00", 2));
  }

  // The server keeps serving new connections correctly.
  client cli("127.0.0.1", srv.port());
  cli.ping();
  const auto stream = sample_stream(4, 12);
  const auto r = cli.ingest(stream);
  EXPECT_TRUE(r.accepted);
  cli.drain();
  EXPECT_GE(srv.counters().disconnects, 1u);
}

// --- malformed-frame suite ---------------------------------------------------

TEST(NetServer, FirstFrameMustBeHello) {
  serve::clustering_service service(make_serve_config(1));
  server srv(service, server_config{});
  raw_conn conn(srv.port());
  std::string ping;
  encode_ping(ping, 1);
  conn.send_all(ping);
  std::string buffer;
  EXPECT_EQ(conn.read_error(buffer), error_code::bad_handshake);
  EXPECT_TRUE(conn.reads_eof());
}

TEST(NetServer, ForeignEndianHelloRejectedWithTypedError) {
  serve::clustering_service service(make_serve_config(1));
  server srv(service, server_config{});
  raw_conn conn(srv.port());
  // A big-endian peer's hello: marker bytes arrive reversed.
  std::string payload;
  payload.push_back(static_cast<char>(msg_type::hello));
  const std::uint64_t id = 1;
  payload.append(reinterpret_cast<const char*>(&id), sizeof(id));
  payload.append(k_hello_magic, sizeof(k_hello_magic));
  const std::uint32_t version = k_protocol_version;
  payload.append(reinterpret_cast<const char*>(&version), sizeof(version));
  const std::uint32_t marker = util::byteswap32(k_endian_marker);
  payload.append(reinterpret_cast<const char*>(&marker), sizeof(marker));
  conn.send_all(raw_frame(payload));
  std::string buffer;
  EXPECT_EQ(conn.read_error(buffer), error_code::foreign_endian);
  EXPECT_TRUE(conn.reads_eof());
}

TEST(NetServer, OversizedDeclaredLengthDrawsTooLargeAndClose) {
  serve::clustering_service service(make_serve_config(1));
  server srv(service, server_config{});
  raw_conn conn(srv.port());
  std::string buffer;
  conn.handshake(buffer);
  std::string bytes;
  const std::uint32_t huge = 1u << 30;  // 1 GiB declared, nothing sent
  bytes.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  bytes.append("\0\0\0\0", 4);
  conn.send_all(bytes);
  EXPECT_EQ(conn.read_error(buffer), error_code::too_large);
  EXPECT_TRUE(conn.reads_eof());
}

TEST(NetServer, CorruptCrcDrawsBadCrcAndClose) {
  serve::clustering_service service(make_serve_config(1));
  server srv(service, server_config{});
  raw_conn conn(srv.port());
  std::string buffer;
  conn.handshake(buffer);
  std::string ping;
  encode_ping(ping, 2);
  ping[ping.size() - 1] ^= 0x40;
  conn.send_all(ping);
  EXPECT_EQ(conn.read_error(buffer), error_code::bad_crc);
  EXPECT_TRUE(conn.reads_eof());
}

TEST(NetServer, GarbageBytesDrawTypedErrorAndClose) {
  serve::clustering_service service(make_serve_config(1));
  server srv(service, server_config{});
  raw_conn conn(srv.port());
  std::string buffer;
  conn.handshake(buffer);
  // 64 bytes of not-a-frame: whatever the length field decodes to, the
  // outcome must be a typed error + close, never a crash or a hang.
  std::string garbage;
  for (int i = 0; i < 64; ++i) garbage.push_back(static_cast<char>(0xA5 ^ i));
  conn.send_all(garbage);
  const auto code = conn.read_error(buffer);
  EXPECT_TRUE(code == error_code::bad_crc || code == error_code::too_large ||
              code == error_code::malformed)
      << error_code_name(code);
  EXPECT_TRUE(conn.reads_eof());
}

TEST(NetServer, MalformedIngestBodyDrawsMalformedAndClose) {
  serve::clustering_service service(make_serve_config(1));
  server srv(service, server_config{});
  raw_conn conn(srv.port());
  std::string buffer;
  conn.handshake(buffer);
  std::string payload;
  payload.push_back(static_cast<char>(msg_type::ingest));
  const std::uint64_t id = 3;
  payload.append(reinterpret_cast<const char*>(&id), sizeof(id));
  payload += "not a spectrum batch";
  conn.send_all(raw_frame(payload));
  EXPECT_EQ(conn.read_error(buffer), error_code::malformed);
  EXPECT_TRUE(conn.reads_eof());
  EXPECT_GE(srv.counters().protocol_errors, 1u);
}

// --- stalls ------------------------------------------------------------------

TEST(NetServer, SlowlorisPartialHeaderTimesOutButIdleConnectionSurvives) {
  serve::clustering_service service(make_serve_config(1));
  server_config config;
  config.stall_timeout = std::chrono::milliseconds{200};
  server srv(service, config);

  // Idle-but-complete connection: handshaken, nothing pending. It must
  // survive well past the stall timeout (keep-alive).
  client idle("127.0.0.1", srv.port());

  // Slowloris: half a frame header, then silence.
  raw_conn loris(srv.port());
  std::string buffer;
  loris.handshake(buffer);
  loris.send_all(std::string("\x10\x00\x00", 3));

  EXPECT_TRUE(loris.reads_eof());  // reaped by the stall sweep
  idle.ping();                     // still alive and serving
  EXPECT_GE(srv.counters().stalls_closed, 1u);
}

// --- failpoints --------------------------------------------------------------

TEST(NetServer, RecvFailpointCostsOneConnectionOnly) {
  util::registry().reset();
  serve::clustering_service service(make_serve_config(1));
  server srv(service, server_config{});
  util::registry().arm_from_spec("net.recv=error@times1");
  {
    raw_conn doomed(srv.port());
    std::string hello;
    encode_hello_request(hello, 1);
    doomed.send_all(hello);
    EXPECT_TRUE(doomed.reads_eof());
  }
  util::registry().reset();
  client cli("127.0.0.1", srv.port());
  cli.ping();
}

TEST(NetServer, GracefulStopFlushesAndJoins) {
  serve::clustering_service service(make_serve_config(2));
  auto srv = std::make_unique<server>(service, server_config{});
  client cli("127.0.0.1", srv->port());
  const auto r = cli.ingest(sample_stream(4, 21));
  EXPECT_TRUE(r.accepted);
  srv->request_stop();
  srv->wait();
  srv.reset();
  service.drain();
  EXPECT_GT(service.stats().record_count, 0u);
}

}  // namespace
}  // namespace spechd::net
