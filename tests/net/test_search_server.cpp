// Golden layer for the networked OMS path: `query --topk` answered over
// loopback must be bit-identical, field for field, to calling
// clustering_service::search in-process — at shard counts {1, 4}, across
// tolerances including the degenerate zero window. Also pins the typed
// `rejected` refusal when no library is loaded and the malformed-frame
// handling of a truncated query_topk body.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "ms/synthetic.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "serve/search.hpp"
#include "serve/service.hpp"
#include "util/crc32.hpp"

namespace spechd::net {
namespace {

std::vector<ms::spectrum> sample_stream(std::size_t peptides = 24,
                                        std::uint64_t seed = 77) {
  ms::synthetic_config config;
  config.peptide_count = peptides;
  config.spectra_per_peptide_mean = 4.0;
  config.noise_peaks_per_spectrum = 20.0;
  config.seed = seed;
  return ms::generate_dataset(config).spectra;
}

serve::serve_config make_serve_config(std::size_t shards) {
  serve::serve_config sc;
  sc.pipeline.encoder.dim = 1024;
  sc.pipeline.threads = 1;
  sc.shards = shards;
  sc.queue_capacity = 4;
  return sc;
}

struct temp_path {
  std::string path;
  explicit temp_path(const std::string& name)
      : path((std::filesystem::temp_directory_path() /
              ("spechd_test_" + name + "_" + std::to_string(::getpid()))).string()) {}
  ~temp_path() { std::remove(path.c_str()); }
};

TEST(NetSearchServer, NetworkedSearchMatchesInProcessBitIdentically) {
  const auto config = make_serve_config(1).pipeline;
  const auto lib = serve::spectral_library::from_spectra(sample_stream(24, 77), config);
  ASSERT_GT(lib.size(), 0U);
  temp_path file("search_golden");
  lib.save(file.path);

  const auto queries = sample_stream(10, 55);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));

    serve::clustering_service reference(make_serve_config(shards));
    reference.load_library(file.path);

    serve::clustering_service served(make_serve_config(shards));
    served.load_library(file.path);
    server srv(served, server_config{});
    client cli("127.0.0.1", srv.port());

    std::size_t with_hits = 0;
    for (const auto& q : queries) {
      for (const double tolerance : {0.0, 2.5}) {
        for (const std::uint32_t top_k : {1u, 5u, 1000u}) {
          const auto local = reference.search(q, top_k, tolerance);
          const auto remote = cli.search(q, top_k, tolerance);
          // search_result's defaulted operator== compares every field of
          // every hit, so one assert pins the whole response.
          ASSERT_EQ(remote, local)
              << q.title << " tol=" << tolerance << " k=" << top_k;
          with_hits += remote.hits.empty() ? 0 : 1;
        }
      }
    }
    ASSERT_GT(with_hits, 0U);
  }
}

TEST(NetSearchServer, SearchWithoutLibraryIsTypedRejection) {
  serve::clustering_service service(make_serve_config(2));
  server srv(service, server_config{});
  client cli("127.0.0.1", srv.port());
  cli.ping();
  try {
    cli.search(sample_stream(4, 1).front(), 5, 1.0);
    FAIL() << "expected remote_error";
  } catch (const remote_error& e) {
    EXPECT_EQ(e.code(), error_code::rejected);
    EXPECT_NE(std::string(e.what()).find("no spectral library"), std::string::npos);
  }
  // The connection survives the refusal: the next request still works.
  cli.ping();
}

TEST(NetSearchServer, SearchRequestRoundTripsThroughCodec) {
  // Protocol-level sanity independent of any socket: encode → parse is
  // lossless for the request, and a truncated body is rejected.
  const auto spectrum = sample_stream(2, 9).front();
  std::string frame;
  encode_search_request(frame, 42, spectrum, 7, 3.25);

  frame_view view;
  ASSERT_EQ(decode_frame(frame.data(), frame.size(), k_default_max_frame_bytes, view),
            decode_status::ok);
  EXPECT_EQ(view.type, msg_type::query_topk);
  EXPECT_EQ(view.request_id, 42U);

  ms::spectrum decoded;
  std::uint32_t top_k = 0;
  double tolerance = 0.0;
  ASSERT_TRUE(parse_search_request(view, decoded, top_k, tolerance));
  EXPECT_EQ(top_k, 7U);
  EXPECT_EQ(tolerance, 3.25);
  EXPECT_EQ(decoded.title, spectrum.title);
  EXPECT_EQ(decoded.precursor_mz, spectrum.precursor_mz);
  EXPECT_EQ(decoded.precursor_charge, spectrum.precursor_charge);
  ASSERT_EQ(decoded.peaks.size(), spectrum.peaks.size());

  frame_view truncated = view;
  truncated.body_bytes = truncated.body_bytes / 2;
  EXPECT_FALSE(parse_search_request(truncated, decoded, top_k, tolerance));
}

}  // namespace
}  // namespace spechd::net
