// Wire protocol: frame round-trips for every message type, decode
// statuses for hostile/corrupt bytes, and the hello handshake's
// version/endianness rejection — all without a socket.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "ms/spectrum.hpp"
#include "net/protocol.hpp"
#include "util/crc32.hpp"
#include "util/endian.hpp"

namespace spechd::net {
namespace {

ms::spectrum sample_spectrum() {
  ms::spectrum s;
  s.title = "scan=42 peptide=LVEYK";
  s.scan = 42;
  s.precursor_mz = 523.77;
  s.precursor_charge = 2;
  s.retention_time = 1234.5;
  s.label = 7;
  s.peaks = {{101.07, 1000.0f}, {202.12, 250.5f}, {303.19, 80.25f}};
  return s;
}

/// Decodes exactly one frame from `bytes`, asserting success.
frame_view decode_one(const std::string& bytes) {
  frame_view frame;
  const auto status =
      decode_frame(bytes.data(), bytes.size(), k_default_max_frame_bytes, frame);
  EXPECT_EQ(status, decode_status::ok);
  EXPECT_EQ(frame.frame_bytes, bytes.size());
  return frame;
}

/// Builds a raw frame with an arbitrary (possibly bogus) payload — for
/// crafting hostile bytes the encoders refuse to produce.
std::string raw_frame(const std::string& payload) {
  std::string out;
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  out.append(reinterpret_cast<const char*>(&len), sizeof(len));
  out.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  out += payload;
  return out;
}

// --- round trips -------------------------------------------------------------

TEST(NetProtocol, HelloRoundTripsAndValidates) {
  std::string bytes;
  encode_hello_request(bytes, 9);
  const auto frame = decode_one(bytes);
  EXPECT_EQ(frame.type, msg_type::hello);
  EXPECT_EQ(frame.request_id, 9u);
  EXPECT_EQ(parse_hello_request(frame), hello_status::ok);
}

TEST(NetProtocol, PingPongAndDrainRoundTrip) {
  for (const auto type : {msg_type::ping, msg_type::pong, msg_type::drain,
                          msg_type::drain_ok, msg_type::hello_ok,
                          msg_type::stats}) {
    std::string bytes;
    switch (type) {
      case msg_type::ping: encode_ping(bytes, 1); break;
      case msg_type::pong: encode_pong(bytes, 2); break;
      case msg_type::drain: encode_drain_request(bytes, 3); break;
      case msg_type::drain_ok: encode_drain_response(bytes, 4); break;
      case msg_type::hello_ok: encode_hello_response(bytes, 5); break;
      default: encode_stats_request(bytes, 6); break;
    }
    const auto frame = decode_one(bytes);
    EXPECT_EQ(frame.type, type);
  }
}

TEST(NetProtocol, IngestBatchRoundTripsBitIdentically) {
  std::vector<ms::spectrum> batch = {sample_spectrum(), sample_spectrum()};
  batch[1].title = "second";
  batch[1].peaks.clear();

  std::string bytes;
  encode_ingest_request(bytes, 77, batch);
  const auto frame = decode_one(bytes);
  EXPECT_EQ(frame.type, msg_type::ingest);
  EXPECT_EQ(frame.request_id, 77u);

  std::vector<ms::spectrum> decoded;
  ASSERT_TRUE(parse_ingest_request(frame, decoded));
  ASSERT_EQ(decoded.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(decoded[i].title, batch[i].title);
    EXPECT_EQ(decoded[i].scan, batch[i].scan);
    EXPECT_EQ(decoded[i].precursor_mz, batch[i].precursor_mz);
    EXPECT_EQ(decoded[i].precursor_charge, batch[i].precursor_charge);
    EXPECT_EQ(decoded[i].retention_time, batch[i].retention_time);
    EXPECT_EQ(decoded[i].label, batch[i].label);
    ASSERT_EQ(decoded[i].peaks.size(), batch[i].peaks.size());
    for (std::size_t p = 0; p < batch[i].peaks.size(); ++p) {
      EXPECT_EQ(decoded[i].peaks[p].mz, batch[i].peaks[p].mz);
      EXPECT_EQ(decoded[i].peaks[p].intensity, batch[i].peaks[p].intensity);
    }
  }

  std::string response;
  encode_ingest_response(response, 77, batch.size());
  std::uint64_t accepted = 0;
  ASSERT_TRUE(parse_ingest_response(decode_one(response), accepted));
  EXPECT_EQ(accepted, batch.size());
}

TEST(NetProtocol, QueryRoundTripsFieldExactly) {
  const auto spectrum = sample_spectrum();
  std::string bytes;
  encode_query_request(bytes, 5, spectrum);
  ms::spectrum decoded;
  ASSERT_TRUE(parse_query_request(decode_one(bytes), decoded));
  EXPECT_EQ(decoded.title, spectrum.title);
  EXPECT_EQ(decoded.peaks.size(), spectrum.peaks.size());

  serve::query_result result;
  result.encodable = true;
  result.matched = true;
  result.bucket_key = -1048;
  result.shard = 3;
  result.local_label = 12;
  result.distance = 0.125;
  result.nearest_member = 0.0625;
  result.cluster_size = 9;
  result.view_epoch = 31;
  std::string response;
  encode_query_response(response, 5, result);
  serve::query_result round;
  ASSERT_TRUE(parse_query_response(decode_one(response), round));
  EXPECT_EQ(round.encodable, result.encodable);
  EXPECT_EQ(round.matched, result.matched);
  EXPECT_EQ(round.bucket_key, result.bucket_key);
  EXPECT_EQ(round.shard, result.shard);
  EXPECT_EQ(round.local_label, result.local_label);
  EXPECT_EQ(round.distance, result.distance);
  EXPECT_EQ(round.nearest_member, result.nearest_member);
  EXPECT_EQ(round.cluster_size, result.cluster_size);
  EXPECT_EQ(round.view_epoch, result.view_epoch);
}

TEST(NetProtocol, StatsRoundTrip) {
  wire_stats stats;
  stats.ingested = 1;
  stats.dropped = 2;
  stats.batches = 3;
  stats.record_count = 4;
  stats.cluster_count = 5;
  stats.queue_depth = 6;
  stats.degraded_shards = 7;
  stats.failed_shards = 8;
  stats.requests = 9;
  stats.shed = 10;
  std::string bytes;
  encode_stats_response(bytes, 1, stats);
  wire_stats round;
  ASSERT_TRUE(parse_stats_response(decode_one(bytes), round));
  EXPECT_EQ(round.ingested, 1u);
  EXPECT_EQ(round.dropped, 2u);
  EXPECT_EQ(round.batches, 3u);
  EXPECT_EQ(round.record_count, 4u);
  EXPECT_EQ(round.cluster_count, 5u);
  EXPECT_EQ(round.queue_depth, 6u);
  EXPECT_EQ(round.degraded_shards, 7u);
  EXPECT_EQ(round.failed_shards, 8u);
  EXPECT_EQ(round.requests, 9u);
  EXPECT_EQ(round.shed, 10u);
}

TEST(NetProtocol, ErrorResponseCarriesCodeAndMessage) {
  std::string bytes;
  encode_error_response(bytes, 13, error_code::shed_load, "queues full; retry");
  const auto frame = decode_one(bytes);
  EXPECT_EQ(frame.type, msg_type::error);
  error_code code{};
  std::string message;
  ASSERT_TRUE(parse_error_response(frame, code, message));
  EXPECT_EQ(code, error_code::shed_load);
  EXPECT_EQ(message, "queues full; retry");
}

// --- hostile / corrupt bytes -------------------------------------------------

TEST(NetProtocol, PartialFramesNeedMore) {
  std::string bytes;
  encode_ping(bytes, 1);
  // Every strict prefix of a valid frame is need_more, never an error.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    frame_view frame;
    EXPECT_EQ(decode_frame(bytes.data(), cut, k_default_max_frame_bytes, frame),
              decode_status::need_more)
        << "prefix length " << cut;
  }
}

TEST(NetProtocol, OversizedDeclaredLengthRejectedBeforeBuffering) {
  // Once the 8-byte header is in, the declared length alone must trigger
  // too_large: a hostile client must not be able to park the server in
  // need_more waiting for 1 GiB that never comes.
  std::string bytes;
  const std::uint32_t huge = 1u << 30;
  bytes.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  bytes.append("\0\0\0\0", 4);  // crc field; irrelevant, length is checked first
  frame_view frame;
  EXPECT_EQ(decode_frame(bytes.data(), bytes.size(), k_default_max_frame_bytes, frame),
            decode_status::too_large);
}

TEST(NetProtocol, CorruptPayloadFailsCrc) {
  std::string bytes;
  encode_ping(bytes, 1);
  bytes[bytes.size() - 1] ^= 0x01;  // flip one payload bit
  frame_view frame;
  EXPECT_EQ(decode_frame(bytes.data(), bytes.size(), k_default_max_frame_bytes, frame),
            decode_status::bad_crc);
}

TEST(NetProtocol, PayloadTooSmallForHeadIsMalformed) {
  const auto bytes = raw_frame("abc");  // 3 bytes < type + request_id
  frame_view frame;
  EXPECT_EQ(decode_frame(bytes.data(), bytes.size(), k_default_max_frame_bytes, frame),
            decode_status::malformed);
}

TEST(NetProtocol, MalformedBodiesRejectedNotCrashed) {
  // A CRC-valid frame whose body is garbage must fail the body parser.
  std::string payload;
  payload.push_back(static_cast<char>(msg_type::ingest));
  const std::uint64_t id = 1;
  payload.append(reinterpret_cast<const char*>(&id), sizeof(id));
  payload += "garbage that is not a batch";
  const auto bytes = raw_frame(payload);
  const auto frame = decode_one(bytes);
  std::vector<ms::spectrum> batch;
  EXPECT_FALSE(parse_ingest_request(frame, batch));

  serve::query_result result;
  EXPECT_FALSE(parse_query_response(frame, result));
  wire_stats stats;
  EXPECT_FALSE(parse_stats_response(frame, stats));
}

TEST(NetProtocol, IngestDeclaringHugeCountRejected) {
  // count says 2^32 spectra but no bytes follow — the parser must reject
  // on bounds, not resize a vector to the declared count.
  std::string payload;
  payload.push_back(static_cast<char>(msg_type::ingest));
  const std::uint64_t id = 1;
  payload.append(reinterpret_cast<const char*>(&id), sizeof(id));
  const std::uint64_t count = 1ull << 32;
  payload.append(reinterpret_cast<const char*>(&count), sizeof(count));
  const auto frame = decode_one(raw_frame(payload));
  std::vector<ms::spectrum> batch;
  EXPECT_FALSE(parse_ingest_request(frame, batch));
}

// --- hello handshake ----------------------------------------------------------

/// Hello body layout: magic[4] + version u32 + endian marker u32.
std::string hello_payload(std::uint32_t version, std::uint32_t marker) {
  std::string payload;
  payload.push_back(static_cast<char>(msg_type::hello));
  const std::uint64_t id = 1;
  payload.append(reinterpret_cast<const char*>(&id), sizeof(id));
  payload.append(k_hello_magic, sizeof(k_hello_magic));
  payload.append(reinterpret_cast<const char*>(&version), sizeof(version));
  payload.append(reinterpret_cast<const char*>(&marker), sizeof(marker));
  return payload;
}

TEST(NetProtocol, HelloRejectsForeignEndianMarker) {
  // A big-endian peer writes the marker natively; we read it byte-reversed.
  const auto bytes =
      raw_frame(hello_payload(k_protocol_version, util::byteswap32(k_endian_marker)));
  EXPECT_EQ(parse_hello_request(decode_one(bytes)), hello_status::foreign_endian);
}

TEST(NetProtocol, HelloRejectsUnknownVersion) {
  const auto bytes = raw_frame(hello_payload(k_protocol_version + 1, k_endian_marker));
  EXPECT_EQ(parse_hello_request(decode_one(bytes)), hello_status::bad_version);
}

TEST(NetProtocol, HelloRejectsBadMagicAndShortBody) {
  auto payload = hello_payload(k_protocol_version, k_endian_marker);
  payload[9] = 'X';  // corrupt first magic byte (after type + request_id)
  EXPECT_EQ(parse_hello_request(decode_one(raw_frame(payload))),
            hello_status::bad_magic);

  auto short_payload = hello_payload(k_protocol_version, k_endian_marker);
  short_payload.resize(short_payload.size() - 2);
  EXPECT_EQ(parse_hello_request(decode_one(raw_frame(short_payload))),
            hello_status::malformed);
}

TEST(NetProtocol, DecodeConsumesFramesInSequence) {
  std::string bytes;
  encode_ping(bytes, 1);
  encode_ping(bytes, 2);
  frame_view first;
  ASSERT_EQ(decode_frame(bytes.data(), bytes.size(), k_default_max_frame_bytes, first),
            decode_status::ok);
  EXPECT_EQ(first.request_id, 1u);
  frame_view second;
  ASSERT_EQ(decode_frame(bytes.data() + first.frame_bytes,
                         bytes.size() - first.frame_bytes, k_default_max_frame_bytes,
                         second),
            decode_status::ok);
  EXPECT_EQ(second.request_id, 2u);
}

}  // namespace
}  // namespace spechd::net
