#include "hdc/item_memory.hpp"

#include <gtest/gtest.h>

namespace spechd::hdc {
namespace {

TEST(IdMemory, SizeAndDim) {
  id_memory ids(2048, 100, 1);
  EXPECT_EQ(ids.size(), 100U);
  EXPECT_EQ(ids.dim(), 2048U);
  EXPECT_EQ(ids.at(0).dim(), 2048U);
}

TEST(IdMemory, DeterministicInSeed) {
  id_memory a(512, 10, 77);
  id_memory b(512, 10, 77);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(a.at(i), b.at(i));
}

TEST(IdMemory, DifferentSeedsDiffer) {
  id_memory a(512, 4, 1);
  id_memory b(512, 4, 2);
  EXPECT_NE(a.at(0), b.at(0));
}

TEST(IdMemory, PairwiseApproximatelyOrthogonal) {
  id_memory ids(4096, 20, 5);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = i + 1; j < 20; ++j) {
      const double d = hamming_normalized(ids.at(i), ids.at(j));
      EXPECT_NEAR(d, 0.5, 0.08) << i << "," << j;
    }
  }
}

TEST(IdMemory, OutOfRangeThrows) {
  id_memory ids(512, 3, 1);
  EXPECT_THROW(ids.at(3), logic_error);
}

TEST(LevelMemory, EndpointsNearOrthogonal) {
  level_memory levels(4096, 64, 9);
  const double d = hamming_normalized(levels.at(0), levels.at(63));
  EXPECT_NEAR(d, 0.5, 0.02);
}

TEST(LevelMemory, AdjacentLevelsClose) {
  level_memory levels(4096, 64, 9);
  for (std::size_t l = 0; l + 1 < 64; ++l) {
    const auto d = hamming(levels.at(l), levels.at(l + 1));
    EXPECT_LE(d, 4096 / 2 / 63 + 2) << l;
  }
}

TEST(LevelMemory, HammingMonotoneInLevelGap) {
  level_memory levels(2048, 16, 11);
  // d(0, k) grows monotonically with k (progressive flips never revert).
  std::size_t prev = 0;
  for (std::size_t l = 1; l < 16; ++l) {
    const auto d = hamming(levels.at(0), levels.at(l));
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(LevelMemory, ExpectedHammingExactByConstruction) {
  level_memory levels(2048, 16, 12);
  for (std::size_t a = 0; a < 16; ++a) {
    for (std::size_t b = 0; b < 16; ++b) {
      EXPECT_EQ(hamming(levels.at(a), levels.at(b)), levels.expected_hamming(a, b))
          << a << "," << b;
    }
  }
}

TEST(LevelMemory, RequiresAtLeastTwoLevels) {
  EXPECT_THROW(level_memory(512, 1, 1), logic_error);
  EXPECT_NO_THROW(level_memory(512, 2, 1));
}

TEST(LevelMemory, Deterministic) {
  level_memory a(512, 8, 42);
  level_memory b(512, 8, 42);
  for (std::size_t l = 0; l < 8; ++l) EXPECT_EQ(a.at(l), b.at(l));
}

}  // namespace
}  // namespace spechd::hdc
