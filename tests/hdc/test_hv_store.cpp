#include "hdc/hv_store.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace spechd::hdc {
namespace {

hv_store sample_store(std::size_t records = 5) {
  hv_store store(512, 0xC0FFEE);
  xoshiro256ss rng(1);
  for (std::size_t i = 0; i < records; ++i) {
    hv_record r;
    r.hv = hypervector::random(512, rng);
    r.precursor_mz = 400.0 + static_cast<double>(i);
    r.precursor_charge = 2 + static_cast<int>(i % 2);
    r.scan = static_cast<std::uint32_t>(i + 1);
    r.label = static_cast<std::int32_t>(i % 3);
    store.append(std::move(r));
  }
  return store;
}

TEST(HvStore, RoundTripPreservesEverything) {
  const auto store = sample_store();
  std::stringstream io;
  store.save(io);
  const auto back = hv_store::load(io);
  ASSERT_EQ(back.size(), store.size());
  EXPECT_EQ(back.dim(), 512U);
  EXPECT_EQ(back.encoder_seed(), 0xC0FFEEULL);
  for (std::size_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(back.at(i).hv, store.at(i).hv) << i;
    EXPECT_DOUBLE_EQ(back.at(i).precursor_mz, store.at(i).precursor_mz);
    EXPECT_EQ(back.at(i).precursor_charge, store.at(i).precursor_charge);
    EXPECT_EQ(back.at(i).scan, store.at(i).scan);
    EXPECT_EQ(back.at(i).label, store.at(i).label);
  }
}

TEST(HvStore, FileBytesMatchesSerialisedSize) {
  const auto store = sample_store(7);
  std::stringstream io;
  store.save(io);
  EXPECT_EQ(io.str().size(), store.file_bytes());
}

TEST(HvStore, EmptyStoreRoundTrips) {
  hv_store store(2048, 42);
  std::stringstream io;
  store.save(io);
  const auto back = hv_store::load(io);
  EXPECT_TRUE(back.empty());
  EXPECT_EQ(back.dim(), 2048U);
}

TEST(HvStore, DimensionMismatchOnAppendThrows) {
  hv_store store(512, 1);
  hv_record r;
  r.hv = hypervector(1024);
  EXPECT_THROW(store.append(std::move(r)), logic_error);
}

TEST(HvStore, BadMagicRejected) {
  std::stringstream io;
  io << "NOTAHVSTORE_____________________";
  EXPECT_THROW(hv_store::load(io), parse_error);
}

TEST(HvStore, TruncatedFileRejected) {
  const auto store = sample_store(3);
  std::stringstream io;
  store.save(io);
  const std::string full = io.str();
  std::stringstream truncated(full.substr(0, full.size() - 10));
  EXPECT_THROW(hv_store::load(truncated), parse_error);
}

TEST(HvStore, MissingFileThrows) {
  EXPECT_THROW(hv_store::load_file("/nonexistent/store.sphv"), io_error);
}

TEST(HvStore, SaveLoadFile) {
  const auto path = std::string("/tmp/spechd_test_store.sphv");
  const auto store = sample_store(4);
  store.save_file(path);
  const auto back = hv_store::load_file(path);
  EXPECT_EQ(back.size(), 4U);
  std::remove(path.c_str());
}

TEST(HvStore, CompressionVsMgfScale) {
  // A 2048-bit record costs 256 B + 24 B metadata; a raw 400-peak spectrum
  // costs 4.8 KB -> the store is an order of magnitude smaller.
  hv_store store(2048, 0);
  hv_record r;
  r.hv = hypervector(2048);
  store.append(std::move(r));
  EXPECT_LT(store.file_bytes(), 400U * 12U / 10U * 3U);
}

}  // namespace
}  // namespace spechd::hdc
