#include "hdc/hypervector.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace spechd::hdc {
namespace {

TEST(Hypervector, ZeroInitialised) {
  hypervector hv(256);
  EXPECT_EQ(hv.dim(), 256U);
  EXPECT_EQ(hv.popcount(), 0U);
}

TEST(Hypervector, DimensionMustBeWordAligned) {
  EXPECT_THROW(hypervector(100), logic_error);
  EXPECT_THROW(hypervector(0), logic_error);
  EXPECT_NO_THROW(hypervector(2048));
}

TEST(Hypervector, SetTestResetFlip) {
  hypervector hv(128);
  hv.set(5);
  hv.set(127);
  EXPECT_TRUE(hv.test(5));
  EXPECT_TRUE(hv.test(127));
  EXPECT_FALSE(hv.test(6));
  EXPECT_EQ(hv.popcount(), 2U);
  hv.reset(5);
  EXPECT_FALSE(hv.test(5));
  hv.flip(6);
  EXPECT_TRUE(hv.test(6));
  hv.flip(6);
  EXPECT_FALSE(hv.test(6));
  hv.assign(7, true);
  EXPECT_TRUE(hv.test(7));
  hv.assign(7, false);
  EXPECT_FALSE(hv.test(7));
}

TEST(Hypervector, RandomIsDeterministicPerRng) {
  xoshiro256ss rng_a(1);
  xoshiro256ss rng_b(1);
  EXPECT_EQ(hypervector::random(512, rng_a), hypervector::random(512, rng_b));
}

TEST(Hypervector, RandomApproximatelyBalanced) {
  xoshiro256ss rng(2);
  const auto hv = hypervector::random(8192, rng);
  const double density = static_cast<double>(hv.popcount()) / 8192.0;
  EXPECT_NEAR(density, 0.5, 0.05);
}

TEST(Hypervector, XorIsInvolution) {
  xoshiro256ss rng(3);
  const auto a = hypervector::random(512, rng);
  const auto b = hypervector::random(512, rng);
  EXPECT_EQ((a ^ b) ^ b, a);
}

TEST(Hypervector, XorWithSelfIsZero) {
  xoshiro256ss rng(4);
  const auto a = hypervector::random(512, rng);
  EXPECT_EQ((a ^ a).popcount(), 0U);
}

TEST(Hypervector, XorDimensionMismatchThrows) {
  hypervector a(128);
  hypervector b(256);
  EXPECT_THROW(a ^= b, logic_error);
}

TEST(Hamming, ZeroForIdentical) {
  xoshiro256ss rng(5);
  const auto a = hypervector::random(1024, rng);
  EXPECT_EQ(hamming(a, a), 0U);
}

TEST(Hamming, CountsDifferingBits) {
  hypervector a(64);
  hypervector b(64);
  b.set(0);
  b.set(63);
  EXPECT_EQ(hamming(a, b), 2U);
}

TEST(Hamming, RandomPairNearHalf) {
  xoshiro256ss rng(6);
  const auto a = hypervector::random(8192, rng);
  const auto b = hypervector::random(8192, rng);
  EXPECT_NEAR(hamming_normalized(a, b), 0.5, 0.05);
}

TEST(Hamming, DimensionMismatchThrows) {
  hypervector a(64);
  hypervector b(128);
  EXPECT_THROW(hamming(a, b), logic_error);
}

// Metric axioms on random triples (property sweep over seeds).
class HammingMetric : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HammingMetric, SymmetryAndTriangleInequality) {
  xoshiro256ss rng(GetParam());
  const auto a = hypervector::random(512, rng);
  const auto b = hypervector::random(512, rng);
  const auto c = hypervector::random(512, rng);
  EXPECT_EQ(hamming(a, b), hamming(b, a));
  EXPECT_LE(hamming(a, c), hamming(a, b) + hamming(b, c));
  // XOR-translation invariance: d(a^x, b^x) == d(a, b).
  const auto x = hypervector::random(512, rng);
  EXPECT_EQ(hamming(a ^ x, b ^ x), hamming(a, b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HammingMetric, ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace spechd::hdc
