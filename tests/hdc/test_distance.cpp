#include "hdc/distance.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace spechd::hdc {
namespace {

std::vector<hypervector> random_hvs(std::size_t n, std::size_t dim, std::uint64_t seed) {
  xoshiro256ss rng(seed);
  std::vector<hypervector> hvs;
  hvs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) hvs.push_back(hypervector::random(dim, rng));
  return hvs;
}

TEST(CondensedMatrix, IndexingSymmetric) {
  condensed_matrix<float> m(4);
  m.at(2, 1) = 0.5F;
  EXPECT_FLOAT_EQ(m.at(1, 2), 0.5F);
  m.at(0, 3) = 0.25F;
  EXPECT_FLOAT_EQ(m.at(3, 0), 0.25F);
}

TEST(CondensedMatrix, EntryCount) {
  EXPECT_EQ(condensed_matrix<float>(1).entry_count(), 0U);
  EXPECT_EQ(condensed_matrix<float>(2).entry_count(), 1U);
  EXPECT_EQ(condensed_matrix<float>(10).entry_count(), 45U);
}

TEST(CondensedMatrix, DiagonalAccessThrows) {
  condensed_matrix<float> m(4);
  EXPECT_THROW(m.at(1, 1), logic_error);
  EXPECT_THROW(m.at(5, 0), logic_error);
}

TEST(CondensedMatrix, BytesReflectElementType) {
  EXPECT_EQ(condensed_matrix<float>(10).bytes(), 45U * 4);
  EXPECT_EQ(condensed_matrix<q16>(10).bytes(), 45U * 2);
}

TEST(PairwiseHamming, MatchesDirectComputation) {
  const auto hvs = random_hvs(8, 512, 3);
  const auto m = pairwise_hamming_f32(hvs);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      if (i == j) continue;
      EXPECT_FLOAT_EQ(m.at(i, j),
                      static_cast<float>(hamming_normalized(hvs[i], hvs[j])));
    }
  }
}

TEST(PairwiseHamming, Q16WithinEpsilonOfF32) {
  const auto hvs = random_hvs(10, 2048, 4);
  const auto f = pairwise_hamming_f32(hvs);
  const auto q = pairwise_hamming_q16(hvs);
  for (std::size_t i = 1; i < 10; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_NEAR(q.at(i, j).to_double(), static_cast<double>(f.at(i, j)),
                  q16::epsilon());
    }
  }
}

TEST(PairwiseHamming, EmptyAndSingleton) {
  EXPECT_EQ(pairwise_hamming_f32({}).size(), 0U);
  const auto one = random_hvs(1, 512, 5);
  EXPECT_EQ(pairwise_hamming_f32(one).size(), 1U);
  EXPECT_EQ(pairwise_hamming_f32(one).entry_count(), 0U);
}

TEST(PairwiseHamming, Q16HalfMemoryOfF32) {
  const auto hvs = random_hvs(32, 512, 6);
  EXPECT_EQ(pairwise_hamming_q16(hvs).bytes() * 2, pairwise_hamming_f32(hvs).bytes());
}

}  // namespace
}  // namespace spechd::hdc
