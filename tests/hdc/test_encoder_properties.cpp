// Property-based tests of the ID-Level encoding's geometry: the encoder is
// only useful for clustering if Hamming distance tracks spectral overlap
// monotonically and concentrates predictably. Also pins the encoding with
// a golden regression value (any change to item-memory construction,
// majority rule or tie-breaking shows up here first).
#include <gtest/gtest.h>

#include "hdc/encoder.hpp"
#include "util/rng.hpp"

namespace spechd::hdc {
namespace {

using preprocess::quantized_peak;
using preprocess::quantized_spectrum;

constexpr std::size_t k_bins = 2000;
constexpr std::size_t k_levels = 32;

const id_level_encoder& encoder() {
  static const id_level_encoder enc(encoder_config{.dim = 2048, .seed = 0xC0FFEE},
                                    k_bins, k_levels);
  return enc;
}

quantized_spectrum spectrum_with_peaks(std::size_t n, xoshiro256ss& rng) {
  quantized_spectrum q;
  q.peaks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    q.peaks.push_back({static_cast<std::uint32_t>(rng.bounded(k_bins)),
                       static_cast<std::uint16_t>(rng.bounded(k_levels))});
  }
  return q;
}

/// Replaces `replaced` of a's peaks with fresh random peaks.
quantized_spectrum degrade(const quantized_spectrum& a, std::size_t replaced,
                           xoshiro256ss& rng) {
  quantized_spectrum b = a;
  for (std::size_t i = 0; i < replaced && i < b.peaks.size(); ++i) {
    b.peaks[i] = {static_cast<std::uint32_t>(rng.bounded(k_bins)),
                  static_cast<std::uint16_t>(rng.bounded(k_levels))};
  }
  return b;
}

// Distance grows monotonically as shared peaks are replaced.
class EncoderMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EncoderMonotonicity, DistanceTracksOverlap) {
  xoshiro256ss rng(GetParam());
  const auto base = spectrum_with_peaks(40, rng);
  const auto hv_base = encoder().encode(base);

  double previous = -1.0;
  for (const std::size_t replaced : {0U, 5U, 10U, 20U, 30U, 40U}) {
    const auto variant = degrade(base, replaced, rng);
    const double d = hamming_normalized(hv_base, encoder().encode(variant));
    // Allow slack of 0.02 for stochastic wiggle; the trend must hold.
    EXPECT_GE(d, previous - 0.02) << "replaced " << replaced;
    previous = d;
  }
  EXPECT_GT(previous, 0.4);  // fully-replaced ~ orthogonal
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncoderMonotonicity, ::testing::Range<std::uint64_t>(1, 9));

// Level perturbations cost less distance than bin perturbations: the level
// memory is correlated, the ID memory is not.
TEST(EncoderGeometry, LevelNoiseCheaperThanBinNoise) {
  xoshiro256ss rng(77);
  const auto base = spectrum_with_peaks(40, rng);
  auto level_shifted = base;
  auto bin_shifted = base;
  for (std::size_t i = 0; i < 20; ++i) {
    level_shifted.peaks[i].level = static_cast<std::uint16_t>(
        std::min<std::uint32_t>(k_levels - 1, level_shifted.peaks[i].level + 2));
    bin_shifted.peaks[i].mz_bin =
        static_cast<std::uint32_t>(rng.bounded(k_bins));
  }
  const auto hv = encoder().encode(base);
  EXPECT_LT(hamming(hv, encoder().encode(level_shifted)),
            hamming(hv, encoder().encode(bin_shifted)));
}

// Peak order must not matter (the accumulation is commutative).
TEST(EncoderGeometry, PermutationInvariant) {
  xoshiro256ss rng(88);
  auto a = spectrum_with_peaks(30, rng);
  auto b = a;
  std::reverse(b.peaks.begin(), b.peaks.end());
  EXPECT_EQ(encoder().encode(a), encoder().encode(b));
}

// Distances between unrelated spectra concentrate near 0.5 with the
// sqrt(D) standard deviation HDC theory predicts.
TEST(EncoderGeometry, UnrelatedDistancesConcentrate) {
  xoshiro256ss rng(99);
  std::vector<double> distances;
  for (int i = 0; i < 40; ++i) {
    const auto a = encoder().encode(spectrum_with_peaks(40, rng));
    const auto b = encoder().encode(spectrum_with_peaks(40, rng));
    distances.push_back(hamming_normalized(a, b));
  }
  double mean = 0.0;
  for (const auto d : distances) mean += d;
  mean /= static_cast<double>(distances.size());
  EXPECT_NEAR(mean, 0.5, 0.02);
  for (const auto d : distances) EXPECT_NEAR(d, 0.5, 0.1);
}

// Golden regression: the exact popcount of a fixed encoding. If item-memory
// generation, the majority rule, the tiebreaker, or xoshiro seeding change,
// this value changes — bump it only with a deliberate format break.
TEST(EncoderGolden, FixedInputPopcountPinned) {
  quantized_spectrum q;
  for (std::uint32_t i = 0; i < 25; ++i) {
    q.peaks.push_back({static_cast<std::uint32_t>((i * 73) % k_bins),
                       static_cast<std::uint16_t>((i * 7) % k_levels)});
  }
  const auto hv = encoder().encode(q);
  EXPECT_EQ(hv.dim(), 2048U);
  EXPECT_EQ(hv.popcount(), 1056U);
  EXPECT_EQ(hv.words()[0], 2722761414289398155ULL);
  EXPECT_EQ(hv.words()[31], 17912081010123896534ULL);
}

}  // namespace
}  // namespace spechd::hdc
