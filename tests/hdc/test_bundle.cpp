#include "hdc/bundle.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace spechd::hdc {
namespace {

std::vector<hypervector> random_hvs(std::size_t n, std::size_t dim, std::uint64_t seed) {
  xoshiro256ss rng(seed);
  std::vector<hypervector> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(hypervector::random(dim, rng));
  return out;
}

TEST(Bundle, SingleInputIsIdentity) {
  const auto hvs = random_hvs(1, 512, 1);
  EXPECT_EQ(bundle_majority(hvs), hvs[0]);
}

TEST(Bundle, EmptyInputRejected) {
  std::vector<hypervector> none;
  EXPECT_THROW(bundle_majority(none), logic_error);
}

TEST(Bundle, MajorityOfThreeKnownBits) {
  hypervector a(64);
  hypervector b(64);
  hypervector c(64);
  a.set(0);
  b.set(0);          // bit 0: 2/3 -> set
  c.set(1);          // bit 1: 1/3 -> clear
  a.set(2);
  b.set(2);
  c.set(2);          // bit 2: 3/3 -> set
  const std::vector<hypervector> hvs = {a, b, c};
  const auto m = bundle_majority(hvs);
  EXPECT_TRUE(m.test(0));
  EXPECT_FALSE(m.test(1));
  EXPECT_TRUE(m.test(2));
}

TEST(Bundle, BundleIsCloserToMembersThanRandom) {
  const auto members = random_hvs(7, 2048, 3);
  const auto bundle = bundle_majority(members);
  xoshiro256ss rng(99);
  const auto outsider = hypervector::random(2048, rng);
  for (const auto& m : members) {
    EXPECT_LT(hamming(bundle, m), hamming(bundle, outsider));
    // Members sit well inside the ~0.5 random distance.
    EXPECT_LT(hamming_normalized(bundle, m), 0.40);
  }
}

TEST(Bundle, EvenTieBreaksTowardFirstInput) {
  hypervector a(64);
  hypervector b(64);
  a.set(5);  // bit 5: 1/2 -> tie -> follows a (set)
  const std::vector<hypervector> hvs = {a, b};
  EXPECT_TRUE(bundle_majority(hvs).test(5));
  const std::vector<hypervector> reversed = {b, a};
  EXPECT_FALSE(bundle_majority(reversed).test(5));
}

TEST(IncrementalBundle, MatchesBatchBundle) {
  const auto members = random_hvs(9, 1024, 7);
  incremental_bundle inc(1024);
  for (const auto& m : members) inc.add(m);
  EXPECT_EQ(inc.majority(), bundle_majority(members));
  EXPECT_EQ(inc.members(), 9U);
}

TEST(IncrementalBundle, DimensionMismatchRejected) {
  incremental_bundle inc(512);
  EXPECT_THROW(inc.add(hypervector(1024)), logic_error);
}

TEST(IncrementalBundle, EmptyMajorityRejected) {
  incremental_bundle inc(512);
  EXPECT_THROW(inc.majority(), logic_error);
}

// Property: the bundle of n noisy variants of a prototype recovers a vector
// closer to the prototype than any single variant is (denoising).
class BundleDenoising : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BundleDenoising, RecoversPrototype) {
  const std::size_t n = GetParam();
  xoshiro256ss rng(11 + n);
  const auto prototype = hypervector::random(2048, rng);
  std::vector<hypervector> variants;
  variants.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto v = prototype;
    for (std::size_t flips = 0; flips < 2048 / 5; ++flips) {
      v.flip(rng.bounded(2048));  // ~20% bit noise
    }
    variants.push_back(std::move(v));
  }
  const auto recovered = bundle_majority(variants);
  double worst_variant = 0.0;
  for (const auto& v : variants) {
    worst_variant = std::max(worst_variant, hamming_normalized(prototype, v));
  }
  EXPECT_LT(hamming_normalized(prototype, recovered), worst_variant);
}

INSTANTIATE_TEST_SUITE_P(MemberCounts, BundleDenoising, ::testing::Values(3U, 5U, 9U, 15U));

}  // namespace
}  // namespace spechd::hdc
