// Equivalence tests for the dispatching kernel layer: every SIMD variant
// and every thread count must produce *bit-identical* results to the scalar
// reference — same Hamming counts, same encoded vectors (including the
// even-count tie-break), same bundle majorities — so kernel dispatch can
// never move quality metrics.
#include "hdc/cpu_kernels.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "hdc/bundle.hpp"
#include "hdc/distance.hpp"
#include "hdc/encoder.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace spechd::hdc {
namespace {

namespace k = kernels;

/// Restores the dispatched variant on scope exit.
class variant_guard {
public:
  variant_guard() : saved_(k::active()) {}
  ~variant_guard() { k::set_active(saved_); }

private:
  k::variant saved_;
};

std::vector<k::variant> supported_variants() {
  std::vector<k::variant> out;
  for (const k::variant v : {k::variant::scalar, k::variant::avx2, k::variant::avx512}) {
    if (k::supported(v)) out.push_back(v);
  }
  return out;
}

std::vector<std::uint64_t> random_words(std::size_t n, xoshiro256ss& rng) {
  std::vector<std::uint64_t> w(n);
  for (auto& x : w) x = rng();
  return w;
}

std::vector<hypervector> random_hvs(std::size_t n, std::size_t dim, std::uint64_t seed) {
  xoshiro256ss rng(seed);
  std::vector<hypervector> hvs;
  hvs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) hvs.push_back(hypervector::random(dim, rng));
  return hvs;
}

std::size_t xor_popcount_reference(const std::uint64_t* a, const std::uint64_t* b,
                                   std::size_t words) {
  std::size_t count = 0;
  for (std::size_t w = 0; w < words; ++w) count += std::popcount(a[w] ^ b[w]);
  return count;
}

TEST(KernelDispatch, ScalarAlwaysSupported) {
  EXPECT_TRUE(k::supported(k::variant::scalar));
  EXPECT_TRUE(k::supported(k::best_supported()));
}

TEST(KernelDispatch, SetActiveRejectsUnsupported) {
  variant_guard guard;
  if (!k::supported(k::variant::avx512)) {
    EXPECT_THROW(k::set_active(k::variant::avx512), logic_error);
  }
  k::set_active(k::variant::scalar);
  EXPECT_EQ(k::active(), k::variant::scalar);
}

TEST(KernelDispatch, ParseVariantRoundTripsAndRejectsGarbage) {
  EXPECT_EQ(k::parse_variant("scalar"), k::variant::scalar);
  EXPECT_EQ(k::parse_variant("avx2"), k::variant::avx2);
  EXPECT_EQ(k::parse_variant("avx512"), k::variant::avx512);
  EXPECT_EQ(k::parse_variant("auto"), k::best_supported());
  EXPECT_THROW(k::parse_variant("sse9000"), logic_error);
}

TEST(XorPopcount, AllVariantsMatchReferenceAcrossWordCounts) {
  variant_guard guard;
  xoshiro256ss rng(11);
  // 1/32/64 words = dims {64, 2048, 4096}; 3/7/33 exercise the SIMD tails.
  for (const std::size_t words : {1UL, 3UL, 7UL, 32UL, 33UL, 64UL}) {
    const auto a = random_words(words, rng);
    const auto b = random_words(words, rng);
    const std::size_t expected = xor_popcount_reference(a.data(), b.data(), words);
    for (const auto v : supported_variants()) {
      k::set_active(v);
      EXPECT_EQ(k::xor_popcount(a.data(), b.data(), words), expected)
          << k::variant_name(v) << " words=" << words;
      EXPECT_EQ(k::popcount(a.data(), words),
                xor_popcount_reference(a.data(), std::vector<std::uint64_t>(words, 0).data(),
                                       words))
          << k::variant_name(v) << " words=" << words;
    }
  }
}

TEST(HammingTile, AllVariantsMatchPerPairReference) {
  variant_guard guard;
  constexpr std::size_t words = 32;
  constexpr std::size_t n_rows = 5;
  constexpr std::size_t n_cols = 7;
  xoshiro256ss rng(13);
  std::vector<std::vector<std::uint64_t>> row_data;
  std::vector<std::vector<std::uint64_t>> col_data;
  std::vector<const std::uint64_t*> rows;
  std::vector<const std::uint64_t*> cols;
  for (std::size_t r = 0; r < n_rows; ++r) {
    row_data.push_back(random_words(words, rng));
    rows.push_back(row_data.back().data());
  }
  for (std::size_t c = 0; c < n_cols; ++c) {
    col_data.push_back(random_words(words, rng));
    cols.push_back(col_data.back().data());
  }
  for (const auto v : supported_variants()) {
    k::set_active(v);
    std::vector<std::uint32_t> counts(n_rows * n_cols, 0);
    k::hamming_tile(rows.data(), n_rows, cols.data(), n_cols, words, counts.data());
    for (std::size_t r = 0; r < n_rows; ++r) {
      for (std::size_t c = 0; c < n_cols; ++c) {
        EXPECT_EQ(counts[r * n_cols + c], xor_popcount_reference(rows[r], cols[c], words))
            << k::variant_name(v) << " r=" << r << " c=" << c;
      }
    }
  }
}

TEST(PackOperands, CopiesEveryOperandContiguously) {
  xoshiro256ss rng(29);
  constexpr std::size_t n = 9;
  constexpr std::size_t words = 5;
  std::vector<std::vector<std::uint64_t>> data;
  std::vector<const std::uint64_t*> ptrs;
  for (std::size_t i = 0; i < n; ++i) {
    data.push_back(random_words(words, rng));
    ptrs.push_back(data.back().data());
  }
  std::vector<std::uint64_t> blob(n * words, 0xDEADBEEF);
  k::pack_operands(ptrs.data(), n, words, blob.data());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t w = 0; w < words; ++w) {
      ASSERT_EQ(blob[i * words + w], data[i][w]) << "operand " << i << " word " << w;
    }
  }
}

// Randomized equivalence: the packed tile must agree with the per-pair
// scalar reference (and hence with the pointer tile) for every supported
// variant, across ragged shapes that exercise the 4-row blocking
// remainders, the SIMD word tails, and — at words >= 128 — the AVX-512
// carry-save reduction path.
TEST(HammingTilePacked, RandomizedEquivalenceAcrossVariantsAndShapes) {
  variant_guard guard;
  struct shape {
    std::size_t n_rows, n_cols, words;
  };
  const shape shapes[] = {
      {1, 1, 1},   {1, 7, 3},    {2, 5, 7},    {3, 3, 8},     {4, 64, 32},
      {5, 9, 32},  {6, 2, 31},   {7, 64, 33},  {64, 64, 32},  {8, 8, 64},
      {4, 4, 128}, {5, 3, 129},  {9, 17, 130}, {2, 2, 136},
  };
  std::uint64_t seed = 1;
  for (const auto& s : shapes) {
    xoshiro256ss rng(1000 + seed++);
    std::vector<std::uint64_t> rows = random_words(s.n_rows * s.words, rng);
    std::vector<std::uint64_t> cols = random_words(s.n_cols * s.words, rng);

    std::vector<std::uint32_t> expected(s.n_rows * s.n_cols);
    for (std::size_t r = 0; r < s.n_rows; ++r) {
      for (std::size_t c = 0; c < s.n_cols; ++c) {
        expected[r * s.n_cols + c] = static_cast<std::uint32_t>(xor_popcount_reference(
            rows.data() + r * s.words, cols.data() + c * s.words, s.words));
      }
    }

    for (const auto v : supported_variants()) {
      k::set_active(v);
      std::vector<std::uint32_t> counts(s.n_rows * s.n_cols, 0);
      k::hamming_tile_packed(rows.data(), s.n_rows, cols.data(), s.n_cols, s.words,
                             counts.data());
      ASSERT_EQ(counts, expected) << k::variant_name(v) << " rows=" << s.n_rows
                                  << " cols=" << s.n_cols << " words=" << s.words;
    }
  }
}

// Packed and pointer tiles must agree bit-for-bit on the same operands —
// the contract that let distance.cpp and the incremental assigner switch
// paths without moving any quality metric.
TEST(HammingTilePacked, MatchesPointerTileOnRandomTrials) {
  variant_guard guard;
  xoshiro256ss rng(31337);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n_rows = 1 + rng.bounded(70);
    const std::size_t n_cols = 1 + rng.bounded(70);
    const std::size_t words = 1 + rng.bounded(40);
    std::vector<std::uint64_t> blob = random_words((n_rows + n_cols) * words, rng);
    std::vector<const std::uint64_t*> row_ptrs(n_rows);
    std::vector<const std::uint64_t*> col_ptrs(n_cols);
    for (std::size_t r = 0; r < n_rows; ++r) row_ptrs[r] = blob.data() + r * words;
    for (std::size_t c = 0; c < n_cols; ++c) {
      col_ptrs[c] = blob.data() + (n_rows + c) * words;
    }
    for (const auto v : supported_variants()) {
      k::set_active(v);
      std::vector<std::uint32_t> unpacked(n_rows * n_cols, 0);
      std::vector<std::uint32_t> packed(n_rows * n_cols, 1);
      k::hamming_tile(row_ptrs.data(), n_rows, col_ptrs.data(), n_cols, words,
                      unpacked.data());
      k::hamming_tile_packed(blob.data(), n_rows, blob.data() + n_rows * words, n_cols,
                             words, packed.data());
      ASSERT_EQ(packed, unpacked) << k::variant_name(v) << " trial=" << trial
                                  << " rows=" << n_rows << " cols=" << n_cols
                                  << " words=" << words;
    }
  }
}

TEST(BitslicedAccumulator, CountsMatchIntegerCountersForAllVariants) {
  variant_guard guard;
  constexpr std::size_t words = 4;
  constexpr std::size_t dims = words * 64;
  constexpr std::size_t adds = 137;
  xoshiro256ss data_rng(17);
  std::vector<std::vector<std::uint64_t>> inputs;
  for (std::size_t i = 0; i < adds; ++i) inputs.push_back(random_words(words, data_rng));

  std::vector<std::uint32_t> reference(dims, 0);
  for (const auto& in : inputs) {
    for (std::size_t d = 0; d < dims; ++d) {
      reference[d] += static_cast<std::uint32_t>((in[d / 64] >> (d % 64)) & 1ULL);
    }
  }

  for (const auto v : supported_variants()) {
    k::set_active(v);
    k::bitsliced_accumulator acc(words);
    for (const auto& in : inputs) acc.add(in.data());
    EXPECT_EQ(acc.additions(), adds);
    for (std::size_t d = 0; d < dims; ++d) {
      ASSERT_EQ(acc.count_at(d), reference[d]) << k::variant_name(v) << " dim=" << d;
    }
  }
}

TEST(BitslicedAccumulator, MajorityMatchesReferenceIncludingEvenTies) {
  variant_guard guard;
  constexpr std::size_t words = 2;
  constexpr std::size_t dims = words * 64;
  for (const std::size_t adds : {1UL, 2UL, 6UL, 7UL, 64UL}) {
    xoshiro256ss rng(100 + adds);
    std::vector<std::vector<std::uint64_t>> inputs;
    for (std::size_t i = 0; i < adds; ++i) inputs.push_back(random_words(words, rng));
    const auto tie = random_words(words, rng);

    // Integer-counter reference with the scalar path's exact tie rule.
    std::vector<std::uint32_t> counts(dims, 0);
    for (const auto& in : inputs) {
      for (std::size_t d = 0; d < dims; ++d) {
        counts[d] += static_cast<std::uint32_t>((in[d / 64] >> (d % 64)) & 1ULL);
      }
    }
    const std::size_t half = adds / 2;
    const bool even = adds % 2 == 0;
    std::vector<std::uint64_t> expected(words, 0);
    bool tie_hit = false;
    for (std::size_t d = 0; d < dims; ++d) {
      bool bit;
      if (even && counts[d] == half) {
        bit = ((tie[d / 64] >> (d % 64)) & 1ULL) != 0;
        tie_hit = true;
      } else {
        bit = counts[d] > half;
      }
      if (bit) expected[d / 64] |= 1ULL << (d % 64);
    }
    if (even) EXPECT_TRUE(tie_hit) << "even case should exercise the tie-break";

    for (const auto v : supported_variants()) {
      k::set_active(v);
      k::bitsliced_accumulator acc(words);
      for (const auto& in : inputs) acc.add(in.data());
      std::vector<std::uint64_t> out(words, 0);
      acc.majority(tie.data(), out.data());
      EXPECT_EQ(out, expected) << k::variant_name(v) << " adds=" << adds;
    }
  }
}

TEST(PairwiseHamming, VariantsAndThreadCountsBitIdentical) {
  variant_guard guard;
  for (const std::size_t dim : {64UL, 2048UL, 4096UL}) {
    // 150 vectors spans multiple 64-wide tiles plus a ragged edge.
    const auto hvs = random_hvs(150, dim, dim);

    k::set_active(k::variant::scalar);
    const auto f32_ref = pairwise_hamming_f32(hvs);
    const auto q16_ref = pairwise_hamming_q16(hvs);

    for (const auto v : supported_variants()) {
      k::set_active(v);
      for (const std::size_t threads : {0UL, 1UL, 4UL}) {
        thread_pool pool(threads == 0 ? 1 : threads);
        thread_pool* p = threads == 0 ? nullptr : &pool;
        const auto f32 = pairwise_hamming_f32(hvs, p);
        const auto q16m = pairwise_hamming_q16(hvs, p);
        ASSERT_EQ(f32.data(), f32_ref.data())
            << k::variant_name(v) << " dim=" << dim << " threads=" << threads;
        ASSERT_TRUE(q16m.data() == q16_ref.data())
            << k::variant_name(v) << " dim=" << dim << " threads=" << threads;
      }
    }
  }
}

preprocess::quantized_spectrum random_quantized(std::size_t peaks, std::uint32_t mz_bins,
                                                std::uint16_t levels, xoshiro256ss& rng) {
  preprocess::quantized_spectrum s;
  for (std::size_t p = 0; p < peaks; ++p) {
    s.peaks.push_back({static_cast<std::uint32_t>(rng.bounded(mz_bins)),
                       static_cast<std::uint16_t>(rng.bounded(levels))});
  }
  return s;
}

TEST(Encoder, VariantsBitIdenticalIncludingEvenPeakCountsAndEmpty) {
  variant_guard guard;
  const encoder_config config{.dim = 2048, .seed = 0xC0FFEE};
  const id_level_encoder encoder(config, 512, 32);
  xoshiro256ss rng(23);

  std::vector<preprocess::quantized_spectrum> spectra;
  // Even peak counts (tie-break reachable), odd counts, and the empty
  // spectrum (all-ties edge case).
  for (const std::size_t peaks : {0UL, 1UL, 2UL, 7UL, 50UL, 64UL}) {
    spectra.push_back(random_quantized(peaks, 512, 32, rng));
  }

  k::set_active(k::variant::scalar);
  std::vector<hypervector> reference;
  for (const auto& s : spectra) reference.push_back(encoder.encode(s));

  for (const auto v : supported_variants()) {
    k::set_active(v);
    for (std::size_t i = 0; i < spectra.size(); ++i) {
      EXPECT_EQ(encoder.encode(spectra[i]), reference[i])
          << k::variant_name(v) << " spectrum " << i;
    }
    for (const std::size_t threads : {1UL, 4UL}) {
      thread_pool pool(threads);
      const auto batch = encoder.encode_batch(spectra, &pool);
      ASSERT_EQ(batch.size(), reference.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(batch[i], reference[i])
            << k::variant_name(v) << " threads=" << threads << " spectrum " << i;
      }
    }
  }
}

TEST(Bundle, VariantsBitIdenticalIncludingEvenMemberTies) {
  variant_guard guard;
  for (const std::size_t members : {1UL, 2UL, 5UL, 8UL}) {
    const auto hvs = random_hvs(members, 2048, 31 + members);

    k::set_active(k::variant::scalar);
    incremental_bundle ref_bundle(2048);
    for (const auto& hv : hvs) ref_bundle.add(hv);
    const auto reference = ref_bundle.majority();

    for (const auto v : supported_variants()) {
      k::set_active(v);
      incremental_bundle bundle(2048);
      for (const auto& hv : hvs) bundle.add(hv);
      EXPECT_EQ(bundle.members(), members);
      EXPECT_EQ(bundle.majority(), reference)
          << k::variant_name(v) << " members=" << members;
      EXPECT_EQ(bundle_majority(hvs), reference) << k::variant_name(v);
    }
  }
}

}  // namespace
}  // namespace spechd::hdc
