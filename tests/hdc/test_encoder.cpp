#include "hdc/encoder.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace spechd::hdc {
namespace {

using preprocess::quantized_peak;
using preprocess::quantized_spectrum;

quantized_spectrum make_qs(std::initializer_list<quantized_peak> peaks) {
  quantized_spectrum q;
  q.peaks = peaks;
  return q;
}

encoder_config small_config() {
  encoder_config c;
  c.dim = 1024;
  c.seed = 5;
  return c;
}

TEST(Encoder, DeterministicAcrossInstances) {
  id_level_encoder a(small_config(), 100, 16);
  id_level_encoder b(small_config(), 100, 16);
  const auto q = make_qs({{10, 3}, {20, 7}, {30, 15}});
  EXPECT_EQ(a.encode(q), b.encode(q));
}

TEST(Encoder, SinglePeakEqualsBoundPair) {
  id_level_encoder enc(small_config(), 100, 16);
  const auto q = make_qs({{42, 9}});
  // With one peak the majority of a single binding is the binding itself.
  const auto expected = enc.ids().at(42) ^ enc.levels().at(9);
  EXPECT_EQ(enc.encode(q), expected);
}

TEST(Encoder, EmptySpectrumEncodesToTiebreakPattern) {
  id_level_encoder enc(small_config(), 100, 16);
  const auto hv = enc.encode(make_qs({}));
  // Zero peaks: every count ties at 0 == n/2; result is deterministic and
  // stable (the tiebreak vector).
  EXPECT_EQ(hv, enc.encode(make_qs({})));
}

TEST(Encoder, IdenticalSpectraZeroDistance) {
  id_level_encoder enc(small_config(), 1000, 16);
  const auto q = make_qs({{1, 5}, {500, 10}, {999, 2}});
  EXPECT_EQ(hamming(enc.encode(q), enc.encode(q)), 0U);
}

TEST(Encoder, SimilarSpectraCloserThanRandomPair) {
  id_level_encoder enc(small_config(), 1000, 16);
  // 20 shared peaks, one level bumped by 1 in the "similar" copy.
  quantized_spectrum a;
  quantized_spectrum b;
  quantized_spectrum c;
  xoshiro256ss rng(3);
  for (int i = 0; i < 20; ++i) {
    const auto bin = static_cast<std::uint32_t>(rng.bounded(1000));
    const auto level = static_cast<std::uint16_t>(rng.bounded(15));
    a.peaks.push_back({bin, level});
    b.peaks.push_back({bin, static_cast<std::uint16_t>(level + 1)});
    c.peaks.push_back({static_cast<std::uint32_t>(rng.bounded(1000)),
                       static_cast<std::uint16_t>(rng.bounded(16))});
  }
  const auto ha = enc.encode(a);
  const auto hb = enc.encode(b);
  const auto hc = enc.encode(c);
  EXPECT_LT(hamming(ha, hb), hamming(ha, hc));
  EXPECT_LT(hamming_normalized(ha, hb), 0.25);
  EXPECT_GT(hamming_normalized(ha, hc), 0.3);
}

TEST(Encoder, DisjointSpectraNearOrthogonal) {
  encoder_config c;
  c.dim = 4096;
  id_level_encoder enc(c, 1000, 16);
  quantized_spectrum a;
  quantized_spectrum b;
  for (std::uint32_t i = 0; i < 25; ++i) {
    a.peaks.push_back({i, 8});
    b.peaks.push_back({500 + i, 8});
  }
  EXPECT_NEAR(hamming_normalized(enc.encode(a), enc.encode(b)), 0.5, 0.08);
}

TEST(Encoder, EvenPeakCountTieBreakDeterministic) {
  id_level_encoder enc(small_config(), 100, 16);
  const auto q = make_qs({{1, 2}, {50, 10}});  // n = 2, ties possible
  EXPECT_EQ(enc.encode(q), enc.encode(q));
}

TEST(Encoder, BatchMatchesIndividual) {
  id_level_encoder enc(small_config(), 100, 16);
  std::vector<quantized_spectrum> batch = {make_qs({{1, 1}}), make_qs({{2, 2}, {3, 3}})};
  const auto hvs = enc.encode_batch(batch);
  ASSERT_EQ(hvs.size(), 2U);
  EXPECT_EQ(hvs[0], enc.encode(batch[0]));
  EXPECT_EQ(hvs[1], enc.encode(batch[1]));
}

TEST(CompressionFactor, MatchesDefinition) {
  // 1000 spectra x 300 peaks x 12 B vs 1000 x 256 B HVs -> 14.06x.
  const double f = compression_factor(1000ULL * 300 * 12, 1000, 2048);
  EXPECT_NEAR(f, 3600.0 / 256.0, 1e-9);
}

TEST(CompressionFactor, ZeroGuards) {
  EXPECT_DOUBLE_EQ(compression_factor(100, 0, 2048), 0.0);
  EXPECT_DOUBLE_EQ(compression_factor(100, 10, 0), 0.0);
}

}  // namespace
}  // namespace spechd::hdc
