// Equivalence suite for the dispatched k-select kernel: every SIMD variant
// must be bit-identical to a scalar std::partial_sort reference over packed
// (count << 32 | index) keys — same hits, same order, same lowest-index
// tie-break — across duplicate-heavy inputs, k ∈ {1, 8, bucket_size,
// > candidate count}, and empty candidate sets. The output contract is a
// totally ordered ascending (count, index) prefix, so any correct variant
// is *forced* to agree bit for bit; these tests pin that the variants are
// in fact correct.
#include "hdc/cpu_kernels.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace spechd::hdc {
namespace {

namespace k = kernels;

/// Restores the dispatched variant on scope exit.
class variant_guard {
public:
  variant_guard() : saved_(k::active()) {}
  ~variant_guard() { k::set_active(saved_); }

private:
  k::variant saved_;
};

std::vector<k::variant> supported_variants() {
  std::vector<k::variant> out;
  for (const k::variant v : {k::variant::scalar, k::variant::avx2, k::variant::avx512}) {
    if (k::supported(v)) out.push_back(v);
  }
  return out;
}

/// The reference the satellite pins against: partial_sort over packed keys.
std::vector<k::select_entry> partial_sort_reference(const std::vector<std::uint32_t>& counts,
                                                    std::size_t want) {
  std::vector<std::uint64_t> keys;
  keys.reserve(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    keys.push_back((static_cast<std::uint64_t>(counts[i]) << 32) | i);
  }
  const std::size_t m = std::min(want, keys.size());
  std::partial_sort(keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(m), keys.end());
  std::vector<k::select_entry> out;
  out.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    out.push_back({static_cast<std::uint32_t>(keys[i] >> 32),
                   static_cast<std::uint32_t>(keys[i] & 0xFFFFFFFFu)});
  }
  return out;
}

std::vector<k::select_entry> run_k_select(const std::vector<std::uint32_t>& counts,
                                          std::size_t want) {
  std::vector<k::select_entry> out(std::min(want, counts.size()));
  const std::size_t written = k::k_select(counts.data(), counts.size(), want, out.data());
  EXPECT_EQ(written, out.size());
  return out;
}

TEST(KSelect, EmptyCandidateSetReturnsNothingForAllVariants) {
  variant_guard guard;
  for (const auto v : supported_variants()) {
    k::set_active(v);
    k::select_entry sentinel{123, 456};
    EXPECT_EQ(k::k_select(nullptr, 0, 8, &sentinel), 0U) << k::variant_name(v);
    EXPECT_EQ(sentinel.count, 123U) << k::variant_name(v);  // untouched
    const std::uint32_t one = 7;
    EXPECT_EQ(k::k_select(&one, 1, 0, &sentinel), 0U) << k::variant_name(v);
  }
}

TEST(KSelect, KLargerThanCandidateCountReturnsFullSortedSet) {
  variant_guard guard;
  const std::vector<std::uint32_t> counts{9, 3, 3, 17, 0, 3};
  const auto expected = partial_sort_reference(counts, 100);
  ASSERT_EQ(expected.size(), counts.size());
  for (const auto v : supported_variants()) {
    k::set_active(v);
    EXPECT_EQ(run_k_select(counts, 100), expected) << k::variant_name(v);
  }
}

TEST(KSelect, DuplicateCountsTieBreakToLowestIndex) {
  variant_guard guard;
  // All-equal counts: the top-k must be exactly the k lowest indices.
  const std::vector<std::uint32_t> flat(37, 42);
  for (const auto v : supported_variants()) {
    k::set_active(v);
    for (const std::size_t want : {1UL, 8UL, 37UL}) {
      const auto got = run_k_select(flat, want);
      ASSERT_EQ(got.size(), std::min(want, flat.size())) << k::variant_name(v);
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].count, 42U) << k::variant_name(v);
        EXPECT_EQ(got[i].index, i) << k::variant_name(v) << " want=" << want;
      }
    }
  }
}

TEST(KSelect, RandomizedEquivalenceAcrossVariantsShapesAndTies) {
  variant_guard guard;
  xoshiro256ss rng(20260808);
  // Shapes around SIMD block boundaries (8/16 lanes) plus larger buckets;
  // value_range 4 forces heavy duplicate-count ties, value_range 2^14
  // exercises near-unique counts.
  const std::size_t sizes[] = {1, 2, 7, 8, 9, 15, 16, 17, 31, 64, 100, 257, 1000};
  for (const std::size_t n : sizes) {
    for (const std::uint32_t value_range : {4U, 1U << 14}) {
      std::vector<std::uint32_t> counts(n);
      for (auto& c : counts) c = static_cast<std::uint32_t>(rng.bounded(value_range));
      // k ∈ {1, 8, bucket_size, > candidate count} per the satellite spec.
      for (const std::size_t want : {std::size_t{1}, std::size_t{8}, n, n + 5}) {
        const auto expected = partial_sort_reference(counts, want);
        for (const auto v : supported_variants()) {
          k::set_active(v);
          ASSERT_EQ(run_k_select(counts, want), expected)
              << k::variant_name(v) << " n=" << n << " k=" << want
              << " range=" << value_range;
        }
      }
    }
  }
}

TEST(KSelect, AscendingAndDescendingInputsStaySorted) {
  variant_guard guard;
  std::vector<std::uint32_t> asc(130);
  std::vector<std::uint32_t> desc(130);
  for (std::size_t i = 0; i < asc.size(); ++i) {
    asc[i] = static_cast<std::uint32_t>(i / 3);  // plateaus of equal counts
    desc[i] = static_cast<std::uint32_t>((asc.size() - i) / 3);
  }
  for (const auto& counts : {asc, desc}) {
    const auto expected = partial_sort_reference(counts, 10);
    for (const auto v : supported_variants()) {
      k::set_active(v);
      EXPECT_EQ(run_k_select(counts, 10), expected) << k::variant_name(v);
    }
  }
}

}  // namespace
}  // namespace spechd::hdc
